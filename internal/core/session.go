package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/partition"
	"repro/internal/relation"
)

// ErrSessionDone reports an answer or skip on a session that has
// already converged: every tuple carries a label and no membership
// query remains to be asked.
var ErrSessionDone = errors.New("core: session has converged; nothing left to answer")

// ErrOutOfRange reports a tuple index outside the instance.
var ErrOutOfRange = errors.New("core: tuple index out of range")

// ErrSchemaMismatch reports tuples whose shape does not match the
// session's instance (wrong arity or attribute set).
var ErrSchemaMismatch = errors.New("core: tuple does not match the instance schema")

// Session is the canonical pull-based interaction surface of JIM — the
// paper's Figure 2 dialogue as an object: the caller asks for a
// proposal (Propose or TopK), answers or skips it, optionally streams
// new tuples in, and reads the running result, until Done. Engine's
// driver loops, the public jim.Session facade, and the HTTP server are
// all thin shells over this type, so proposal routing around skipped
// classes lives in exactly one place.
//
// A Session is not safe for concurrent use; callers that share one
// across goroutines (the HTTP layer) serialize access themselves.
type Session struct {
	st     *State
	picker Picker

	// OnConflict decides what Answer does with a label contradicting
	// earlier ones (default FailOnConflict).
	OnConflict ConflictPolicy
	// RedeferLimit bounds how many times Propose re-offers tuples whose
	// classes were all skipped, between answers: 0 means the default of
	// 3, negative means unlimited (interactive clients that explicitly
	// skipped can only be asked again). An accepted answer resets the
	// budget.
	RedeferLimit int

	// deferred holds signature classes the caller skipped; cleared when
	// a new label or batch of tuples arrives (fresh context may help
	// decide) or when a re-offer round starts.
	deferred    map[*SigGroup]bool
	redeferrals int
	// skipClears counts re-offer rounds: Propose clearing a fully
	// skipped set. Observable via SkipClears so transports that log
	// mutations (the durable session store) can record that a proposal
	// mutated the skip set — the one state change a read path makes.
	skipClears int
	infBuf     []int // reusable buffer for deferred-routing scans
}

// NewSession opens a pull-based session over an existing state, so
// callers may pre-seed labels before interaction starts.
func NewSession(st *State, picker Picker) *Session {
	return &Session{st: st, picker: picker}
}

// State exposes the session's inference state.
func (s *Session) State() *State { return s.st }

// Strategy returns the picker's name.
func (s *Session) Strategy() string { return s.picker.Name() }

// Done reports convergence: no informative tuple remains.
func (s *Session) Done() bool { return s.st.Done() }

// Result returns the canonical inferred query M_P — the current best
// hypothesis mid-session, the answer at convergence.
func (s *Session) Result() partition.P { return s.st.Result() }

// Progress returns the current labeling progress.
func (s *Session) Progress() Progress { return s.st.Progress() }

// Explain justifies the current label of tuple i.
func (s *Session) Explain(i int) (Explanation, error) { return s.st.Explain(i) }

// Propose returns the next informative tuple to ask about, routing
// around skipped classes: the strategy's choice is honored unless the
// caller skipped its class, in which case the ranked alternatives
// (KPicker) or the remaining informative tuples are scanned for an
// un-skipped one. When every informative class is skipped, the skip
// set is cleared and the tuples re-offered, within RedeferLimit rounds
// between answers. ok=false means convergence, or an exhausted
// re-offer budget with nothing else to ask.
func (s *Session) Propose() (i int, ok bool) {
	i, ok = s.picker.Pick(s.st)
	if !ok {
		return 0, false
	}
	if len(s.deferred) == 0 || !s.deferred[s.st.GroupOf(i)] {
		return i, true
	}
	if kp, isKP := s.picker.(KPicker); isKP {
		// Ask for exactly the informative-class count: ranking can never
		// return more than one tuple per class, so requesting the total
		// class count only made the ranker chew on settled classes.
		for _, j := range kp.PickK(s.st, s.st.InformativeGroupCount()) {
			if !s.deferred[s.st.GroupOf(j)] {
				return j, true
			}
		}
	}
	s.infBuf = s.st.AppendInformativeIndices(s.infBuf[:0])
	for _, j := range s.infBuf {
		if !s.deferred[s.st.GroupOf(j)] {
			return j, true
		}
	}
	// Everything informative is skipped: re-offer, within budget.
	limit := s.RedeferLimit
	if limit == 0 {
		limit = 3
	}
	if limit > 0 && s.redeferrals >= limit {
		return 0, false
	}
	s.redeferrals++
	s.skipClears++
	s.deferred = nil
	return i, true
}

// SkipClears counts the re-offer rounds so far: each time Propose
// found every informative class skipped and cleared the set. A caller
// that must persist every skip-set mutation (the durable store's WAL)
// compares it around Propose and records a clear event when it moved.
func (s *Session) SkipClears() int { return s.skipClears }

// ClearSkips replays one re-offer round: the WAL-replay counterpart of
// the clear Propose performs when everything informative is skipped.
func (s *Session) ClearSkips() {
	s.redeferrals++
	s.skipClears++
	s.deferred = nil
}

// TopK returns the k most informative tuples, best first — interaction
// mode 3's batch proposal. Strategies that cannot rank (plain Pickers)
// and k < 1 are rejected. The returned slice follows the KPicker
// ownership contract: it is valid until the session's next proposal
// and must be copied to be retained.
func (s *Session) TopK(k int) ([]int, error) {
	kp, ok := s.picker.(KPicker)
	if !ok {
		return nil, fmt.Errorf("core: strategy %q cannot rank top-k tuples", s.picker.Name())
	}
	if k < 1 {
		return nil, fmt.Errorf("core: TopK requires k >= 1, got %d", k)
	}
	return kp.PickK(s.st, k), nil
}

// AnswerOutcome reports what one accepted answer did to the state.
type AnswerOutcome struct {
	// NewlyImplied lists the tuples grayed out by this label.
	NewlyImplied []int
	// Conflict reports the label contradicted earlier ones and was
	// dropped under SkipOnConflict (the implied label was kept).
	Conflict bool
	// Wasted reports the tuple was already uninformative when labeled
	// (possible in user-order modes).
	Wasted bool
}

// Answer records an explicit label for tuple i and propagates its
// consequences. Contradictory labels fail with ErrInconsistent under
// FailOnConflict and come back as Outcome.Conflict (state unchanged,
// no error) under SkipOnConflict. A bad index fails with
// ErrOutOfRange; relabeling an explicit label with ErrAlreadyLabeled.
// Labeling an uninformative tuple consistently is allowed even after
// convergence — it pins an implied label down explicitly (interaction
// modes 1–2) — and reports Outcome.Wasted. An accepted answer clears
// the skip set — fresh information may unblock skipped classes — and
// resets the re-offer budget.
func (s *Session) Answer(i int, l Label) (AnswerOutcome, error) {
	if i < 0 || i >= s.st.Relation().Len() {
		return AnswerOutcome{}, fmt.Errorf("%w: %d not in [0,%d)", ErrOutOfRange, i, s.st.Relation().Len())
	}
	out := AnswerOutcome{Wasted: s.st.Label(i) != Unlabeled}
	newly, err := s.st.Apply(i, l)
	if errors.Is(err, ErrInconsistent) && s.OnConflict == SkipOnConflict {
		out.Conflict = true
		return out, nil
	}
	if err != nil {
		return AnswerOutcome{}, err
	}
	out.NewlyImplied = newly
	s.deferred = nil
	s.redeferrals = 0
	return out, nil
}

// Skip defers the signature class of tuple i: Propose stops offering
// tuples of that class until a new label or batch of arrivals clears
// the skip set, or every informative class is skipped and a re-offer
// round starts. Skipping is the caller saying "I don't know" — the
// engine maps labeler abstentions here. Skipping a converged session
// fails with ErrSessionDone: there is nothing left to defer.
func (s *Session) Skip(i int) error {
	if i < 0 || i >= s.st.Relation().Len() {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrOutOfRange, i, s.st.Relation().Len())
	}
	if s.st.Done() {
		return fmt.Errorf("%w: cannot skip tuple %d", ErrSessionDone, i)
	}
	if s.deferred == nil {
		s.deferred = make(map[*SigGroup]bool)
	}
	s.deferred[s.st.GroupOf(i)] = true
	return nil
}

// Skips returns one representative unlabeled tuple index per
// signature class currently skipped, ascending — the serializable form
// of the skip set. Replaying Skip on each index over an equal state
// reproduces the skip set exactly, which is how the durable session
// store carries deferred classes across a restart. Classes that became
// fully labeled since they were skipped are omitted: they no longer
// influence proposal routing.
func (s *Session) Skips() []int {
	if len(s.deferred) == 0 {
		return nil
	}
	out := make([]int, 0, len(s.deferred))
	for g := range s.deferred {
		for _, i := range g.Indices {
			if s.st.Label(i) == Unlabeled {
				out = append(out, i)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// Append streams new tuples into the live session (State.Append) and
// clears the skip set — arrivals may make skipped classes worth
// re-asking about. It returns the indices of arrivals whose labels
// were implied on landing. Wrong-arity tuples fail the whole batch
// with ErrSchemaMismatch, leaving the state untouched.
func (s *Session) Append(tuples []relation.Tuple) (newlyImplied []int, err error) {
	newly, err := s.st.Append(tuples)
	if err != nil {
		return nil, err
	}
	if len(tuples) > 0 {
		s.deferred = nil
	}
	return newly, nil
}
