package core

import (
	"fmt"

	"repro/internal/partition"
)

// ExplanationKind classifies why a tuple carries its label.
type ExplanationKind int8

// Explanation kinds.
const (
	ExplainUnlabeled       ExplanationKind = iota // still informative
	ExplainExplicit                               // the user said so
	ExplainImpliedPositive                        // M_P ≤ Eq(t)
	ExplainImpliedNegative                        // M_P ⋀ Eq(t) ≤ Eq(s) for a negative s
)

// Explanation justifies a tuple's current label in terms of the
// inference invariants — the demo's "why is this grayed out?" answer.
type Explanation struct {
	Index int
	Label Label
	Kind  ExplanationKind
	// Witness is the negative signature that blocks the tuple
	// (implied-negative explanations only).
	Witness partition.P
	// WitnessIndex is a tuple carrying Witness as an explicit negative
	// label, or -1 when the witness arose from a dominated negative.
	WitnessIndex int
}

// Explain justifies the current label of tuple i.
func (st *State) Explain(i int) (Explanation, error) {
	if i < 0 || i >= len(st.labels) {
		return Explanation{}, fmt.Errorf("%w: %d not in [0,%d)", ErrOutOfRange, i, len(st.labels))
	}
	e := Explanation{Index: i, Label: st.labels[i], WitnessIndex: -1}
	switch st.labels[i] {
	case Unlabeled:
		e.Kind = ExplainUnlabeled
	case Positive, Negative:
		e.Kind = ExplainExplicit
	case ImpliedPositive:
		e.Kind = ExplainImpliedPositive
	case ImpliedNegative:
		e.Kind = ExplainImpliedNegative
		sig := st.sigs[i]
		m := st.mp.Meet(sig)
		for _, neg := range st.negs {
			if m.LessEq(neg) {
				e.Witness = neg
				e.WitnessIndex = st.explicitNegativeWith(neg)
				break
			}
		}
	}
	return e, nil
}

// explicitNegativeWith finds a tuple explicitly labeled negative whose
// signature equals neg, or -1.
func (st *State) explicitNegativeWith(neg partition.P) int {
	for i, l := range st.labels {
		if l == Negative && st.sigs[i].Equal(neg) {
			return i
		}
	}
	return -1
}

// Format renders the explanation with attribute names, e.g.
//
//	tuple (4) is grayed out positive: every consistent query selects
//	it because M_P = {To=City ∧ Airline=Discount} ≤ Eq(t).
func (e Explanation) Format(st *State) string {
	names := st.Relation().Schema().Names()
	switch e.Kind {
	case ExplainUnlabeled:
		return fmt.Sprintf("tuple %d is informative: consistent queries disagree about it", e.Index)
	case ExplainExplicit:
		return fmt.Sprintf("tuple %d was labeled %v by the user", e.Index, e.Label)
	case ExplainImpliedPositive:
		return fmt.Sprintf(
			"tuple %d is implied positive: the current hypothesis M_P = %s holds in it, so every consistent query selects it",
			e.Index, st.MP().FormatAtoms(names))
	case ExplainImpliedNegative:
		witness := e.Witness.FormatAtoms(names)
		if e.WitnessIndex >= 0 {
			return fmt.Sprintf(
				"tuple %d is implied negative: any consistent query selecting it would also select tuple %d (negative, Eq = %s)",
				e.Index, e.WitnessIndex, witness)
		}
		return fmt.Sprintf(
			"tuple %d is implied negative: any consistent query selecting it would also select a known negative (Eq = %s)",
			e.Index, witness)
	}
	return fmt.Sprintf("tuple %d: unknown explanation", e.Index)
}
