package quality_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/partition"
	"repro/internal/quality"
	"repro/internal/relation"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func TestEvaluateExactMatch(t *testing.T) {
	rel := workload.Travel()
	rep := quality.Evaluate(rel, workload.TravelQ2(), workload.TravelQ2())
	if !rep.Exact() {
		t.Errorf("self comparison not exact: %+v", rep)
	}
	if rep.Precision() != 1 || rep.Recall() != 1 || rep.F1() != 1 || rep.Accuracy() != 1 {
		t.Errorf("self metrics: %s", rep)
	}
	// Q2 selects 2 of 12 travel tuples.
	if rep.TruePositives != 2 || rep.TrueNegatives != 10 {
		t.Errorf("counts: %+v", rep)
	}
}

func TestEvaluateContainment(t *testing.T) {
	rel := workload.Travel()
	// Inferred Q1 ⊋ goal Q2: perfect recall, imperfect precision.
	rep := quality.Evaluate(rel, workload.TravelQ1(), workload.TravelQ2())
	if rep.Recall() != 1 {
		t.Errorf("recall = %v", rep.Recall())
	}
	if rep.Precision() >= 1 {
		t.Errorf("precision = %v", rep.Precision())
	}
	// Q1 selects 4, of which Q2 selects 2.
	if rep.TruePositives != 2 || rep.FalsePositives != 2 {
		t.Errorf("counts: %+v", rep)
	}
	// The reverse: inferred Q2 against goal Q1.
	rev := quality.Evaluate(rel, workload.TravelQ2(), workload.TravelQ1())
	if rev.Precision() != 1 {
		t.Errorf("reverse precision = %v", rev.Precision())
	}
	if rev.Recall() != 0.5 {
		t.Errorf("reverse recall = %v", rev.Recall())
	}
	if math.Abs(rev.F1()-2.0/3.0) > 1e-12 {
		t.Errorf("reverse F1 = %v", rev.F1())
	}
}

func TestEvaluateEmptyCases(t *testing.T) {
	empty := relation.New(relation.MustSchema("a", "b"))
	rep := quality.Evaluate(empty, partition.Top(2), partition.Bottom(2))
	if rep.Precision() != 1 || rep.Recall() != 1 || rep.Accuracy() != 1 {
		t.Errorf("empty-instance metrics: %s", rep)
	}
	// Goal selects nothing, inferred selects nothing: F1 well-defined.
	one := relation.MustBuild(relation.MustSchema("a", "b"), []any{1, 2})
	rep = quality.Evaluate(one, partition.Top(2), partition.Top(2))
	if !rep.Exact() || rep.TrueNegatives != 1 {
		t.Errorf("all-negative agreement: %+v", rep)
	}
}

func TestNoisyRunsGradedNotBinary(t *testing.T) {
	// A noisy session may converge to a near-miss; quality grades it.
	rel, goal, err := workload.Synthetic(workload.SynthConfig{
		Attrs: 6, Tuples: 120, Seed: 5, ExtraMerges: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	worst := 1.0
	for seed := int64(0); seed < 10; seed++ {
		st, err := core.NewState(rel)
		if err != nil {
			t.Fatal(err)
		}
		lab := oracle.Noisy(oracle.Goal(goal), 0.25, seed)
		eng := core.NewEngine(st, strategy.LookaheadMaxMin(), lab)
		eng.OnConflict = core.SkipOnConflict
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		rep := quality.Evaluate(rel, res.Query, goal)
		f1 := rep.F1()
		if f1 < 0 || f1 > 1 {
			t.Fatalf("F1 out of range: %v", f1)
		}
		if f1 < worst {
			worst = f1
		}
	}
	// With 25% flips some run should be imperfect — if every run were
	// exact the graded metric would be pointless. (Statistically near
	// certain across 10 seeds.)
	if worst == 1.0 {
		t.Log("all noisy runs exact; acceptable but unusual")
	}
}

func TestStringRendering(t *testing.T) {
	rep := quality.Report{TruePositives: 1, FalsePositives: 1, FalseNegatives: 0, TrueNegatives: 2}
	s := rep.String()
	if s == "" || !containsAll(s, "precision", "recall", "F1", "accuracy") {
		t.Errorf("String = %q", s)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
