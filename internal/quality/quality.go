// Package quality measures how close an inferred join predicate comes
// to the goal on a given instance. Exact instance-equivalence is the
// convergence criterion of truthful sessions; noisy crowd sessions
// (package crowd) need the graded view: precision, recall, and F1 of
// the inferred join result against the goal's.
package quality

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Report grades an inferred predicate against a goal on one instance.
type Report struct {
	// TruePositives counts tuples selected by both predicates.
	TruePositives int
	// FalsePositives counts tuples only the inferred predicate selects.
	FalsePositives int
	// FalseNegatives counts tuples only the goal selects.
	FalseNegatives int
	// TrueNegatives counts tuples neither selects.
	TrueNegatives int
}

// Evaluate compares the join results of inferred and goal over rel.
func Evaluate(rel *relation.Relation, inferred, goal partition.P) Report {
	var rep Report
	for i := 0; i < rel.Len(); i++ {
		sig := core.SigOf(rel.Tuple(i))
		inf := inferred.LessEq(sig)
		g := goal.LessEq(sig)
		switch {
		case inf && g:
			rep.TruePositives++
		case inf && !g:
			rep.FalsePositives++
		case !inf && g:
			rep.FalseNegatives++
		default:
			rep.TrueNegatives++
		}
	}
	return rep
}

// Precision returns TP/(TP+FP); 1 when the inferred result is empty.
func (r Report) Precision() float64 {
	den := r.TruePositives + r.FalsePositives
	if den == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(den)
}

// Recall returns TP/(TP+FN); 1 when the goal's result is empty.
func (r Report) Recall() float64 {
	den := r.TruePositives + r.FalseNegatives
	if den == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(den)
}

// F1 returns the harmonic mean of precision and recall (0 when both
// are 0).
func (r Report) F1() float64 {
	p, rec := r.Precision(), r.Recall()
	if p+rec == 0 {
		return 0
	}
	return 2 * p * rec / (p + rec)
}

// Accuracy returns the fraction of tuples on which the predicates
// agree (1 for an empty instance).
func (r Report) Accuracy() float64 {
	total := r.TruePositives + r.FalsePositives + r.FalseNegatives + r.TrueNegatives
	if total == 0 {
		return 1
	}
	return float64(r.TruePositives+r.TrueNegatives) / float64(total)
}

// Exact reports instance-equivalence (no disagreement at all).
func (r Report) Exact() bool {
	return r.FalsePositives == 0 && r.FalseNegatives == 0
}

// String renders the headline numbers.
func (r Report) String() string {
	return fmt.Sprintf("precision %.3f, recall %.3f, F1 %.3f, accuracy %.3f",
		r.Precision(), r.Recall(), r.F1(), r.Accuracy())
}
