package server_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// storeBlock is the durability block both /v1/stats and GET
// /v1/sessions serve, as extended by format v2.
type storeBlock struct {
	Backend          string  `json:"backend"`
	RestoredSessions int64   `json:"restored_sessions"`
	WALFormat        string  `json:"wal_format"`
	RestoreMS        float64 `json:"restore_ms"`
}

// TestStatsExposeRestoreAndFormat: operators watching a restart need
// to see what format the store writes and what the startup replay
// cost — on /v1/stats and on the session list's store block alike.
func TestStatsExposeRestoreAndFormat(t *testing.T) {
	dir := t.TempDir()
	cfg, ds := diskConfig(t, dir)
	srv := server.NewWith(cfg)
	ts := httptest.NewServer(srv.Handler())

	var s summary
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{"csv": travelCSV}, http.StatusCreated, &s)
	var st struct {
		Store storeBlock `json:"store"`
	}
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &st)
	if st.Store.WALFormat != store.FormatV2 {
		t.Fatalf("wal_format = %q, want %q", st.Store.WALFormat, store.FormatV2)
	}
	if st.Store.RestoreMS != 0 {
		t.Fatalf("restore_ms = %v before any restore, want 0", st.Store.RestoreMS)
	}
	ts.Close()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2, ds2 := diskConfig(t, dir)
	defer ds2.Close()
	srv2 := server.NewWith(cfg2)
	if n, err := srv2.Restore(); err != nil || n != 1 {
		t.Fatalf("restore = %d, %v", n, err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	doJSON(t, "GET", ts2.URL+"/v1/stats", nil, http.StatusOK, &st)
	if st.Store.RestoreMS <= 0 {
		t.Fatalf("restore_ms = %v after a restore, want > 0", st.Store.RestoreMS)
	}
	if st.Store.WALFormat != store.FormatV2 || st.Store.RestoredSessions != 1 {
		t.Fatalf("post-restore store block: %+v", st.Store)
	}
	var list struct {
		Store storeBlock `json:"store"`
	}
	doJSON(t, "GET", ts2.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if list.Store.WALFormat != store.FormatV2 || list.Store.RestoreMS != st.Store.RestoreMS {
		t.Fatalf("list store block %+v does not match stats %+v", list.Store, st.Store)
	}
}

// TestMemStoreHasNoWALFormat: the inert backend reports no format.
func TestMemStoreHasNoWALFormat(t *testing.T) {
	srv := server.NewWith(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var st struct {
		Store storeBlock `json:"store"`
	}
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &st)
	if st.Store.WALFormat != "" {
		t.Fatalf("mem store wal_format = %q, want empty", st.Store.WALFormat)
	}
}

// TestV1DirectoryCrashDifferential is the upgrade acceptance test: a
// session written by this build is transcribed to the v1 JSON layout
// (json.Marshal of the store's exported envelope types IS the v1
// format), then restored by the v2 binary — and from the crash point
// to convergence every proposal must match an uninterrupted in-process
// reference. The first snapshot after restore must upgrade the
// directory to v2.
func TestV1DirectoryCrashDifferential(t *testing.T) {
	initial, goal := workload.Travel(), workload.TravelQ2()
	refRel := relation.New(initial.Schema())
	initial.Each(func(i int, tu relation.Tuple) { refRel.MustAppend(tu) })
	refSt, err := core.NewState(refRel)
	if err != nil {
		t.Fatal(err)
	}
	picker, err := strategy.ByName("lookahead-maxmin", 7)
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewSession(refSt, picker)
	ref.RedeferLimit = -1

	dir := t.TempDir()
	cfg, ds := diskConfig(t, dir)
	srv := server.NewWith(cfg)
	ts := httptest.NewServer(srv.Handler())
	var csv bytes.Buffer
	if err := relation.WriteCSV(&csv, initial); err != nil {
		t.Fatal(err)
	}
	var s summary
	doJSON(t, "POST", ts.URL+"/v1/sessions",
		map[string]any{"csv": csv.String(), "strategy": "lookahead-maxmin", "seed": 7},
		http.StatusCreated, &s)
	base := ts.URL + "/v1/sessions/" + s.ID

	label := func(i int) string {
		if core.Selects(goal, refRel.Tuple(i)) {
			return "+"
		}
		return "-"
	}
	step := func(base string) bool {
		var n next
		doJSON(t, "GET", base+"/next", nil, http.StatusOK, &n)
		refIdx, refOK := ref.Propose()
		if n.Done != !refOK {
			t.Fatalf("done=%v over HTTP, propose ok=%v in-process", n.Done, refOK)
		}
		if n.Done {
			return false
		}
		if n.Tuple.Index != refIdx {
			t.Fatalf("HTTP proposed tuple %d, reference %d", n.Tuple.Index, refIdx)
		}
		doJSON(t, "POST", base+"/label",
			map[string]any{"index": n.Tuple.Index, "label": label(n.Tuple.Index)}, http.StatusOK, nil)
		if _, err := ref.Answer(refIdx, parseLabel(label(refIdx))); err != nil {
			t.Fatal(err)
		}
		return true
	}
	// SnapshotEvery is 3: four labels leave a snapshot plus a WAL
	// suffix, so the transcription below covers both v1 files.
	for i := 0; i < 4; i++ {
		if !step(base) {
			t.Fatal("converged before the crash point")
		}
	}
	ts.Close()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Transcribe the directory to v1: snapshot as one JSON document,
	// WAL as one JSON event per line, no v2 files left behind.
	rd, err := store.NewDisk(store.DiskOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	saved, err := rd.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	if len(saved) != 1 || saved[0].Snapshot == nil || len(saved[0].Events) == 0 {
		t.Fatalf("crash state not snapshot+suffix: %+v", saved)
	}
	sess := filepath.Join(dir, "sessions", saved[0].ID)
	snapJSON, err := json.Marshal(saved[0].Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	var wal bytes.Buffer
	for _, ev := range saved[0].Events {
		line, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		wal.Write(line)
		wal.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(sess, "snap.json"), snapJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sess, "wal.log"), wal.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(sess, "snap.bin")); err != nil {
		t.Fatal(err)
	}

	// Restore the v1 directory with the v2 binary and finish the
	// dialogue in lockstep.
	cfg2, ds2 := diskConfig(t, dir)
	defer ds2.Close()
	srv2 := server.NewWith(cfg2)
	if n, err := srv2.Restore(); err != nil || n != 1 {
		t.Fatalf("restore from v1 = %d, %v", n, err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	base = ts2.URL + "/v1/sessions/" + s.ID
	for i := 0; ; i++ {
		if i > 4*refRel.Len() {
			t.Fatal("no convergence after v1 restore")
		}
		if !step(base) {
			break
		}
	}
	if !ref.Done() {
		t.Fatal("reference did not converge with the restored session")
	}

	// The next snapshot upgrades the directory one-way to v2.
	if err := srv2.SnapshotAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(sess, "snap.bin")); err != nil {
		t.Fatalf("snap.bin missing after upgrade snapshot: %v", err)
	}
	if _, err := os.Stat(filepath.Join(sess, "snap.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snap.json survived the upgrade: %v", err)
	}
}
