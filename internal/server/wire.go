package server

import (
	"fmt"
	"time"

	jim "repro"
	"repro/internal/sqlgen"
	"repro/internal/wire"
)

// This file implements wire.Backend on *Server: the binary wire
// listener drives the exact same apply layer (apply.go) as the /v1
// HTTP handlers — same session table, same locks, same WAL events —
// so the two transports are tuple-for-tuple equivalent by
// construction. The differential tests in wire_test.go hold that
// equivalence across all 8 strategies anyway.

// WireCreate implements wire.Backend: POST /v1/sessions semantics.
func (s *Server) WireCreate(csv, strategyName string, seed int64) (string, error) {
	if strategyName == "" {
		strategyName = jim.DefaultStrategy
	}
	rel, typing, err := readCSVStringTyped(csv)
	if err != nil {
		return "", &jim.Error{Code: jim.CodeBadInput, Message: err.Error()}
	}
	// Same typing pin as HTTP create: arrival parsing never honors an
	// append body's own annotations.
	sess, err := jim.NewSession(rel,
		jim.WithStrategy(strategyName),
		jim.WithSeed(seed),
		jim.WithTyping(typing),
		jim.WithRedeferLimit(-1))
	if err != nil {
		return "", err
	}
	id, _, err := s.register(&liveSession{sess: sess, createdAt: s.now(), seed: seed})
	return id, err
}

// WireStep implements wire.Backend: the wire form of POST /step, with
// the whole answer batch plus the follow-up proposal under one write
// lock. An answer that fails stops the batch — earlier answers stand,
// exactly as if they had arrived in separate frames; the error frame
// reports the first failure. k = 0 applies answers only (POST /label
// semantics), k = 1 takes the routed single-proposal path (GET /next),
// k > 1 the ranked batch (GET /topk).
func (s *Server) WireStep(id string, answers []wire.Answer, k int, out *wire.StepResult) error {
	if err := s.checkWireOwner(id); err != nil {
		return err
	}
	ls, err := s.lookup(id)
	if err != nil {
		return err
	}
	out.Applied = out.Applied[:0]
	out.Proposals = out.Proposals[:0]
	out.Done = false
	ls.mu.Lock()
	defer ls.mu.Unlock()
	for _, a := range answers {
		newly, err := s.applyAnswer(id, ls, a.Index, a.Label.APIString())
		if err != nil {
			return err
		}
		p := ls.sess.Progress()
		out.Applied = append(out.Applied, wire.AnswerOutcome{
			NewlyImplied: len(newly),
			Informative:  p.Informative,
		})
	}
	switch {
	case k > 1:
		indices, err := s.rankK(ls, k)
		if err != nil {
			return err
		}
		out.Proposals = append(out.Proposals, indices...)
	case k == 1:
		i, ok, err := s.proposeOne(id, ls)
		if err != nil {
			return err
		}
		if ok {
			out.Proposals = append(out.Proposals, i)
		}
	}
	out.Done = ls.sess.Done()
	return nil
}

// WireAppend implements wire.Backend: POST /tuples semantics with the
// rows encoding (cells parsed under the session's pinned typing).
func (s *Server) WireAppend(id string, rows [][]string) (wire.AppendResult, error) {
	if err := s.checkWireOwner(id); err != nil {
		return wire.AppendResult{}, err
	}
	ls, err := s.lookup(id)
	if err != nil {
		return wire.AppendResult{}, err
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if len(rows) == 0 {
		return wire.AppendResult{}, &jim.Error{Code: jim.CodeBadInput, Message: "empty append: no rows in frame"}
	}
	tuples, err := ls.sess.ParseRows(rows)
	if err != nil {
		return wire.AppendResult{}, err
	}
	if len(tuples) == 0 {
		return wire.AppendResult{}, &jim.Error{Code: jim.CodeBadInput, Message: "empty append: no tuples in frame"}
	}
	newly, err := s.applyAppend(id, ls, tuples)
	if err != nil {
		return wire.AppendResult{}, err
	}
	p := ls.sess.Progress()
	return wire.AppendResult{
		Appended:     len(tuples),
		NewlyImplied: len(newly),
		Informative:  p.Informative,
		Done:         ls.sess.Done(),
	}, nil
}

// WireResult implements wire.Backend: the hot-path subset of GET
// /result (predicate + SQL; the demo certainty panel stays HTTP-only).
func (s *Server) WireResult(id string) (wire.ResultData, error) {
	if err := s.checkWireOwner(id); err != nil {
		return wire.ResultData{}, err
	}
	ls, err := s.lookup(id)
	if err != nil {
		return wire.ResultData{}, err
	}
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	q := ls.sess.Result()
	sql, err := sqlgen.SelectSQL("instance", ls.sess.State().Relation().Schema(), q)
	if err != nil {
		return wire.ResultData{}, &jim.Error{Code: jim.CodeInternal, Message: fmt.Sprintf("%v", err)}
	}
	return wire.ResultData{
		Done:      ls.sess.Done(),
		Predicate: q.String(),
		SQL:       sql,
	}, nil
}

// WireDelete implements wire.Backend: DELETE /sessions/{id} semantics.
func (s *Server) WireDelete(id string) error {
	if err := s.checkWireOwner(id); err != nil {
		return err
	}
	return s.deleteSession(id)
}

// RecordWireOp implements wire.OpRecorder: wire ops land in the same
// /stats endpoint table as the HTTP routes, under "WIRE <op>" labels.
func (s *Server) RecordWireOp(pattern string, d time.Duration, isErr bool) {
	s.metrics.record(pattern, d, isErr)
}
