// Package server exposes JIM over HTTP: sessions are created from a
// CSV instance, the client fetches the next proposed tuple, posts
// yes/no/skip answers, and reads the inferred predicate — the
// demonstration's web tool as a JSON API, hardened for concurrent
// service. Sessions live in a sharded in-memory table; each session
// carries its own RWMutex so read endpoints (/next, /topk, /result,
// summaries) run concurrently and a slow request on one session never
// blocks another. Lifecycle is managed: idle sessions are evicted
// after a configurable TTL, a session cap rejects overload with 429,
// and GET /stats reports session counts, label throughput, and
// per-endpoint latency. The export/import endpoints round-trip the
// session-file format of package session for persistence.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/session"
	"repro/internal/sqlgen"
	"repro/internal/strategy"
)

// Config tunes the service. The zero value means no cap, no eviction,
// and the real clock — the demo defaults.
type Config struct {
	// MaxSessions caps concurrently live sessions; creates beyond it
	// fail with 429 Too Many Requests. <= 0 means unlimited.
	MaxSessions int
	// IdleTTL evicts sessions not accessed for this long. <= 0 disables
	// eviction.
	IdleTTL time.Duration
	// MaxBodyBytes caps the request body of the ingestion endpoints
	// (create, import, append); larger bodies fail with 413 Request
	// Entity Too Large instead of buffering an arbitrarily large
	// CSV/JSON payload in memory. <= 0 means unlimited.
	MaxBodyBytes int64
	// Now is the clock; nil means time.Now. Injectable for tests.
	Now func() time.Time
}

// Server is an in-memory multi-session JIM service. The zero value is
// not usable; call New or NewWith.
type Server struct {
	cfg     Config
	store   *store
	metrics *metrics
	nextID  atomic.Int64
	// now is the injectable clock (cfg.Now or time.Now).
	now func() time.Time
}

// liveSession is one inference session. mu guards the mutable
// inference state: Apply goes through the write lock; pure reads
// (summaries, result, export) share the read lock. The picker and the
// deferred set are mutable even on read paths (stateful strategies
// memoize per state version, skips defer classes), so they get their
// own innermost mutex, letting /next and /topk still run under the
// read lock concurrently with /result. Lock order: mu before pickMu.
type liveSession struct {
	mu           sync.RWMutex
	st           *core.State
	strategyName string
	createdAt    time.Time
	// typing preserves the creation-time per-column parsing rules so
	// appended tuples parse identically whatever header their body
	// carries; always non-nil (all-inference when the session had no
	// typed CSV header).
	typing     *relation.Typing
	lastAccess atomic.Int64 // unix nanos; maintained by touch

	pickMu   sync.Mutex
	picker   core.KPicker
	deferred map[int]bool // group head index -> deferred (skip answers)
}

// New returns an empty server with demo defaults (no cap, no TTL).
func New() *Server { return NewWith(Config{}) }

// NewWith returns an empty server with the given lifecycle config.
func NewWith(cfg Config) *Server {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Server{
		cfg:     cfg,
		store:   newStore(),
		metrics: newMetrics(now()),
		now:     now,
	}
}

// Handler returns the HTTP API:
//
//	POST   /sessions              create from {"csv": ..., "strategy": ...}
//	GET    /sessions              list session summaries
//	POST   /sessions/import       create from an exported session file
//	GET    /sessions/{id}         session summary
//	DELETE /sessions/{id}         drop the session
//	GET    /sessions/{id}/next    next proposed tuple (or done)
//	GET    /sessions/{id}/topk    k most informative tuples (?k=3)
//	POST   /sessions/{id}/label   {"index": i, "label": "+"|"-"|"skip"}
//	POST   /sessions/{id}/tuples  stream new tuples into the instance
//	GET    /sessions/{id}/result  inferred predicate, SQL, certainty
//	GET    /sessions/{id}/export  persistable session file
//	GET    /stats                 service counters and latency quantiles
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.handleCreate)
	mux.HandleFunc("GET /sessions", s.handleList)
	mux.HandleFunc("POST /sessions/import", s.handleImport)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /sessions/{id}", s.readSession(s.handleSummary))
	mux.HandleFunc("DELETE /sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /sessions/{id}/next", s.readSession(s.handleNext))
	mux.HandleFunc("GET /sessions/{id}/topk", s.readSession(s.handleTopK))
	mux.HandleFunc("POST /sessions/{id}/label", s.writeSession(s.handleLabel))
	mux.HandleFunc("POST /sessions/{id}/tuples", s.writeSession(s.handleAppend))
	mux.HandleFunc("GET /sessions/{id}/result", s.readSession(s.handleResult))
	mux.HandleFunc("GET /sessions/{id}/export", s.readSession(s.handleExport))
	return s.instrument(mux)
}

// limitBody applies Config.MaxBodyBytes to an ingestion request. The
// returned reader fails with *http.MaxBytesError once the cap is hit;
// bodyError maps that onto 413.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	if s.cfg.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
}

// bodyError writes the right status for a request-body read failure:
// 413 when the body cap was exceeded, 400 with the error otherwise.
// It is the single classification site for body-limit handling.
func bodyError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		httpError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes", tooLarge.Limit)
		return
	}
	httpError(w, http.StatusBadRequest, "%v", err)
}

type createRequest struct {
	CSV      string `json:"csv"`
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
}

type sessionSummary struct {
	ID        string    `json:"id"`
	Strategy  string    `json:"strategy"`
	CreatedAt time.Time `json:"created_at"`
	Tuples    int       `json:"tuples"`
	// BaseTuples is the instance size at creation; AppendedTuples
	// counts arrivals streamed in afterwards (Tuples = base + appended).
	BaseTuples     int      `json:"base_tuples"`
	AppendedTuples int      `json:"appended_tuples"`
	Attributes     []string `json:"attributes"`
	Labels         int      `json:"labels"`
	Implied        int      `json:"implied"`
	Informative    int      `json:"informative"`
	Done           bool     `json:"done"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		bodyError(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Strategy == "" {
		req.Strategy = "lookahead-maxmin"
	}
	picker, err := strategy.ByName(req.Strategy, req.Seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rel, typing, err := readCSVStringTyped(req.CSV, nil)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, err := core.NewState(rel)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The creation typing is always retained — an all-inference typing
	// included — so arrival parsing never honors an append body's own
	// header annotations; the same cells must parse the same way
	// whatever encoding or header they arrive with.
	s.create(w, &liveSession{
		st: st, picker: picker, strategyName: req.Strategy, typing: typing,
		createdAt: s.now(), deferred: map[int]bool{},
	})
}

// handleImport restores a session from an exported file. Session
// files carry exact tagged values rather than a CSV header, so an
// imported session has no creation typing: arrivals appended to it
// parse with per-cell inference, pinned (like every session) so an
// append body's own header annotations are ignored.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	st, meta, err := session.Load(r.Body)
	if err != nil {
		bodyError(w, err)
		return
	}
	name := meta.Strategy
	if name == "" {
		name = "lookahead-maxmin"
	}
	picker, err := strategy.ByName(name, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.create(w, &liveSession{
		st: st, picker: picker, strategyName: name,
		typing:    relation.InferenceTyping(st.Relation().Schema().Len()),
		createdAt: s.now(), deferred: map[int]bool{},
	})
}

// create registers a fresh session, enforcing the cap. When at the
// cap, expired sessions are swept first so a full table of abandoned
// sessions does not lock out live users.
func (s *Server) create(w http.ResponseWriter, ls *liveSession) {
	ls.touch(s.now())
	id := fmt.Sprintf("s%04d", s.nextID.Add(1))
	// Snapshot the summary before put publishes the session: ids are
	// predictable, so a concurrent writer could mutate it immediately.
	summary := s.summary(id, ls)
	err := s.store.put(id, ls, s.cfg.MaxSessions)
	if errors.Is(err, errSessionCap) && s.Sweep() > 0 {
		err = s.store.put(id, ls, s.cfg.MaxSessions)
	}
	if err != nil {
		s.store.rejected.Add(1)
		httpError(w, http.StatusTooManyRequests,
			"%v (%d active, max %d)", err, s.store.active.Load(), s.cfg.MaxSessions)
		return
	}
	writeJSON(w, http.StatusCreated, summary)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	out := []sessionSummary{}
	s.store.forEach(func(id string, ls *liveSession) {
		ls.mu.RLock()
		out = append(out, s.summary(id, ls))
		ls.mu.RUnlock()
	})
	// Stable order for clients.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.store.delete(id) {
		httpError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type sessionHandler func(http.ResponseWriter, *http.Request, string, *liveSession)

// readSession resolves {id} and runs h under the session's read lock:
// many such requests proceed concurrently on one session.
func (s *Server) readSession(h sessionHandler) http.HandlerFunc {
	return s.withSession(h, false)
}

// writeSession resolves {id} and runs h under the session's write
// lock, excluding all other requests on that session only.
func (s *Server) writeSession(h sessionHandler) http.HandlerFunc {
	return s.withSession(h, true)
}

func (s *Server) withSession(h sessionHandler, write bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		ls, ok := s.store.get(id)
		if !ok {
			httpError(w, http.StatusNotFound, "no session %q", id)
			return
		}
		ls.touch(s.now())
		if write {
			ls.mu.Lock()
			defer ls.mu.Unlock()
		} else {
			ls.mu.RLock()
			defer ls.mu.RUnlock()
		}
		h(w, r, id, ls)
	}
}

// summary builds a summary. Caller holds ls.mu (either mode).
func (s *Server) summary(id string, ls *liveSession) sessionSummary {
	p := ls.st.Progress()
	return sessionSummary{
		ID:             id,
		Strategy:       ls.strategyName,
		CreatedAt:      ls.createdAt,
		Tuples:         p.Total,
		BaseTuples:     ls.st.BaseLen(),
		AppendedTuples: ls.st.Appended(),
		Attributes:     ls.st.Relation().Schema().Names(),
		Labels:         p.Explicit,
		Implied:        p.Implied,
		Informative:    p.Informative,
		Done:           ls.st.Done(),
	}
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	writeJSON(w, http.StatusOK, s.summary(id, ls))
}

type tupleView struct {
	Index  int               `json:"index"`
	Values map[string]string `json:"values"`
}

func viewTuple(ls *liveSession, i int) tupleView {
	rel := ls.st.Relation()
	vals := make(map[string]string, rel.Schema().Len())
	for c, name := range rel.Schema().Names() {
		vals[name] = rel.Tuple(i)[c].String()
	}
	return tupleView{Index: i, Values: vals}
}

type nextResponse struct {
	Done  bool       `json:"done"`
	Tuple *tupleView `json:"tuple,omitempty"`
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	i, ok := ls.next()
	if !ok {
		writeJSON(w, http.StatusOK, nextResponse{Done: ls.st.Done()})
		return
	}
	tv := viewTuple(ls, i)
	writeJSON(w, http.StatusOK, nextResponse{Done: false, Tuple: &tv})
}

// next picks the next informative non-deferred tuple. Caller holds
// ls.mu; picker and deferred access is serialized under pickMu.
func (ls *liveSession) next() (int, bool) {
	ls.pickMu.Lock()
	defer ls.pickMu.Unlock()
	i, ok := ls.picker.Pick(ls.st)
	if !ok {
		return 0, false
	}
	if !ls.deferred[ls.st.GroupOf(i).Indices[0]] {
		return i, true
	}
	for _, j := range ls.picker.PickK(ls.st, ls.st.InformativeGroupCount()) {
		if !ls.deferred[ls.st.GroupOf(j).Indices[0]] {
			return j, true
		}
	}
	// Everything deferred: re-offer (the client explicitly skipped, so
	// looping back is the only option left).
	ls.deferred = map[int]bool{}
	return i, true
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	k := 3
	if kq := r.URL.Query().Get("k"); kq != "" {
		parsed, err := strconv.Atoi(kq)
		if err != nil || parsed < 1 {
			httpError(w, http.StatusBadRequest, "bad k %q", kq)
			return
		}
		k = parsed
	}
	ls.pickMu.Lock()
	indices := ls.picker.PickK(ls.st, k)
	ls.pickMu.Unlock()
	out := make([]tupleView, 0, len(indices))
	for _, i := range indices {
		out = append(out, viewTuple(ls, i))
	}
	writeJSON(w, http.StatusOK, map[string]any{"tuples": out, "done": ls.st.Done()})
}

type labelRequest struct {
	Index int    `json:"index"`
	Label string `json:"label"` // "+", "-", or "skip"
}

type labelResponse struct {
	NewlyImplied []int  `json:"newly_implied"`
	Informative  int    `json:"informative"`
	Done         bool   `json:"done"`
	Progress     string `json:"progress"`
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	var req labelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Index < 0 || req.Index >= ls.st.Relation().Len() {
		httpError(w, http.StatusBadRequest, "index %d out of range", req.Index)
		return
	}
	var l core.Label
	switch req.Label {
	case "+", "yes", "y":
		l = core.Positive
	case "-", "no", "n":
		l = core.Negative
	case "skip", "s", "?":
		ls.pickMu.Lock()
		ls.deferred[ls.st.GroupOf(req.Index).Indices[0]] = true
		ls.pickMu.Unlock()
		writeJSON(w, http.StatusOK, labelResponse{
			Informative: ls.st.InformativeCount(),
			Done:        ls.st.Done(),
			Progress:    ls.st.Progress().String(),
		})
		return
	default:
		httpError(w, http.StatusBadRequest, "unknown label %q (want +, -, or skip)", req.Label)
		return
	}
	newly, err := ls.st.Apply(req.Index, l)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	s.metrics.labels.Add(1)
	// A new label may unblock deferred classes.
	ls.pickMu.Lock()
	ls.deferred = map[int]bool{}
	ls.pickMu.Unlock()
	if newly == nil {
		newly = []int{}
	}
	writeJSON(w, http.StatusOK, labelResponse{
		NewlyImplied: newly,
		Informative:  ls.st.InformativeCount(),
		Done:         ls.st.Done(),
		Progress:     ls.st.Progress().String(),
	})
}

// appendRequest carries arrival tuples in one of two encodings:
// CSV with a header that must match the session schema exactly, or
// raw string rows parsed cell-by-cell (values.Parse inference, same
// as untyped CSV columns). Exactly one of the two must be set.
type appendRequest struct {
	CSV  string     `json:"csv,omitempty"`
	Rows [][]string `json:"rows,omitempty"`
}

type appendResponse struct {
	Appended     int    `json:"appended"`
	Tuples       int    `json:"tuples"`
	NewlyImplied []int  `json:"newly_implied"`
	Informative  int    `json:"informative"`
	Done         bool   `json:"done"`
	Progress     string `json:"progress"`
}

// handleAppend streams new tuples into a live session — the write-path
// counterpart of create for instances that grow while the user labels.
// Arrivals whose schema does not match the session's fail with 409
// Conflict and leave the session untouched.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	s.limitBody(w, r)
	var req appendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		bodyError(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	tuples, status, err := decodeArrivals(&req, ls.st.Relation().Schema(), ls.typing)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	if len(tuples) == 0 {
		// A header-only CSV carries no arrivals: same contract as an
		// empty rows list, and no metric or deferred-state side effects.
		httpError(w, http.StatusBadRequest, "server: empty append: no tuples in body")
		return
	}
	newly, err := ls.st.Append(tuples)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	s.metrics.appends.Add(1)
	s.metrics.tuplesAppended.Add(int64(len(tuples)))
	// Arrivals may make deferred classes worth re-asking about.
	ls.pickMu.Lock()
	ls.deferred = map[int]bool{}
	ls.pickMu.Unlock()
	if newly == nil {
		newly = []int{}
	}
	writeJSON(w, http.StatusOK, appendResponse{
		Appended:     len(tuples),
		Tuples:       ls.st.Relation().Len(),
		NewlyImplied: newly,
		Informative:  ls.st.InformativeCount(),
		Done:         ls.st.Done(),
		Progress:     ls.st.Progress().String(),
	})
}

// decodeArrivals converts an append request into tuples, validating
// the encoding (400) and the schema (409) without touching the state.
// Cells parse under the session's creation-time typing, so a column
// declared "price:float" at create keeps its parsing rules for
// arrivals — otherwise a cell like "01" would flip kind (and thus Eq
// signature) between creation and append.
func decodeArrivals(req *appendRequest, schema *relation.Schema, typing *relation.Typing) ([]relation.Tuple, int, error) {
	switch {
	case req.CSV != "" && req.Rows != nil:
		return nil, http.StatusBadRequest, fmt.Errorf("server: pass csv or rows, not both")
	case req.CSV != "":
		arrivals, _, err := readCSVStringTyped(req.CSV, typing)
		if errors.Is(err, relation.ErrTypingMismatch) {
			// Column-count drift from the session schema: same contract
			// as any other schema mismatch.
			return nil, http.StatusConflict, err
		}
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		if !arrivals.Schema().Equal(schema) {
			return nil, http.StatusConflict, fmt.Errorf(
				"server: arrival schema %v does not match session schema %v", arrivals.Schema(), schema)
		}
		tuples := make([]relation.Tuple, 0, arrivals.Len())
		for i := 0; i < arrivals.Len(); i++ {
			tuples = append(tuples, arrivals.Tuple(i))
		}
		return tuples, 0, nil
	case len(req.Rows) > 0:
		tuples := make([]relation.Tuple, 0, len(req.Rows))
		for ri, row := range req.Rows {
			if len(row) != schema.Len() {
				return nil, http.StatusConflict, fmt.Errorf(
					"server: arrival row %d has %d cells, session schema %v has %d",
					ri, len(row), schema, schema.Len())
			}
			t := make(relation.Tuple, len(row))
			for ci, cell := range row {
				v, err := typing.ParseCell(ci, cell)
				if err != nil {
					return nil, http.StatusBadRequest, fmt.Errorf(
						"server: arrival row %d column %q: %w", ri, schema.Name(ci), err)
				}
				t[ci] = v
			}
			tuples = append(tuples, t)
		}
		return tuples, 0, nil
	}
	return nil, http.StatusBadRequest, fmt.Errorf("server: empty append: pass csv or rows")
}

type resultResponse struct {
	Done       bool   `json:"done"`
	Predicate  string `json:"predicate"`
	Atoms      string `json:"atoms"`
	SQL        string `json:"sql"`
	Certain    string `json:"certain,omitempty"`
	Undecided  string `json:"undecided,omitempty"`
	Consistent int    `json:"consistent_queries,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	names := ls.st.Relation().Schema().Names()
	q := ls.st.Result()
	sql, err := sqlgen.SelectSQL("instance", ls.st.Relation().Schema(), q)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := resultResponse{
		Done:      ls.st.Done(),
		Predicate: q.String(),
		Atoms:     q.FormatAtoms(names),
		SQL:       sql,
	}
	// Certainty panel for demo-scale instances only.
	if vs, err := ls.st.VersionSpace(100_000); err == nil {
		resp.Certain = core.FormatPairs(vs.CertainPairs(), names)
		resp.Undecided = core.FormatPairs(vs.UndecidedPairs(), names)
		resp.Consistent = ls.st.CountConsistent()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	w.Header().Set("Content-Type", "application/json")
	meta := session.Meta{Strategy: ls.strategyName, CreatedAt: ls.createdAt}
	if err := session.Save(w, ls.st, meta); err != nil {
		// Headers already sent; best effort.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}

// readCSVStringTyped parses a CSV payload, forcing the given typing
// when non-nil (append paths) and returning the header's own typing
// otherwise (create path).
func readCSVStringTyped(csv string, typing *relation.Typing) (*relation.Relation, *relation.Typing, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil, fmt.Errorf("server: empty csv")
	}
	return relation.ReadCSVTyped(strings.NewReader(csv), relation.CSVOptions{Typing: typing})
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
