package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	jim "repro"
	"repro/internal/relation"
	"repro/internal/session"
	"repro/internal/sqlgen"
	"repro/internal/store"
	"repro/internal/strategy"
)

// APIVersion is the version segment of the current wire contract.
const APIVersion = "v1"

// DefaultListLimit is the page size GET /v1/sessions serves when the
// request names none; MaxListLimit caps what a client may ask for.
const (
	DefaultListLimit = 50
	MaxListLimit     = 500
)

// Config tunes the service. The zero value means no cap, no eviction,
// and the real clock — the demo defaults.
type Config struct {
	// MaxSessions caps concurrently live sessions; creates beyond it
	// fail with 429 Too Many Requests. <= 0 means unlimited.
	MaxSessions int
	// IdleTTL evicts sessions not accessed for this long. <= 0 disables
	// eviction.
	IdleTTL time.Duration
	// MaxBodyBytes caps the request body of the ingestion endpoints
	// (create, import, append); larger bodies fail with 413 Request
	// Entity Too Large instead of buffering an arbitrarily large
	// CSV/JSON payload in memory. <= 0 means unlimited.
	MaxBodyBytes int64
	// Store persists sessions across restarts. nil (and store.NewMem())
	// means no durability — the pre-durability in-RAM behavior. With a
	// durable backend, every mutating request appends a WAL event after
	// its in-memory apply, and Restore rebuilds the table at startup.
	Store store.Store
	// SnapshotEvery folds a session's WAL into a fresh snapshot after
	// this many events (the size half of the snapshot policy). <= 0
	// means DefaultSnapshotEvery. Ignored without a durable store.
	SnapshotEvery int
	// SnapshotMaxAge is the age half of the snapshot policy: Sweep
	// re-snapshots sessions whose WAL has been accumulating for longer
	// than this. <= 0 disables age-based snapshots.
	SnapshotMaxAge time.Duration
	// Now is the clock; nil means time.Now. Injectable for tests.
	Now func() time.Time
}

// DefaultSnapshotEvery is the WAL length at which a session's state is
// folded into a fresh snapshot: large enough that snapshot encoding is
// rare next to event appends, small enough that recovery replays at
// most a few hundred events per session.
const DefaultSnapshotEvery = 256

// Server is a multi-session JIM service: a sharded in-RAM session
// table serving requests, with an optional durable store underneath
// it. The zero value is not usable; call New or NewWith, and — with a
// durable store — Restore before serving traffic.
type Server struct {
	cfg      Config
	sessions *table
	metrics  *metrics
	nextID   atomic.Int64
	// durable is true when cfg.Store is a real (non-mem) backend; it
	// gates every persistence hook so the memstore path stays free.
	durable bool
	// snapshotEvery is the normalized Config.SnapshotEvery.
	snapshotEvery int
	// persist aggregates durability counters for /stats.
	persist persistStats
	// demoting tracks sessions between their removal from the table by
	// Sweep and the completion of their demotion snapshot, so a DELETE
	// landing in that window can still fence them (id → *liveSession).
	demoting sync.Map
	// cluster is non-nil when EnableCluster made this node part of a
	// multi-node deployment (see cluster.go); nil keeps every
	// single-node path untouched.
	cluster *clusterState
	// now is the injectable clock (cfg.Now or time.Now).
	now func() time.Time
}

// persistStats counts durable-store activity since process start.
type persistStats struct {
	events    atomic.Int64 // WAL events appended
	snapshots atomic.Int64 // snapshots written
	errors    atomic.Int64 // failed persistence operations
	// lastSnapshot is the unix-nano time of the most recent snapshot
	// write, 0 when none happened yet.
	lastSnapshot atomic.Int64
	// restoreNS is how long the startup Restore took, 0 when the
	// process did not restore (fresh directory or mem store).
	restoreNS atomic.Int64
}

// liveSession is one inference session: a jim.Session plus the locks
// and lifecycle bookkeeping the service needs. mu guards the mutable
// inference state: answers and appends go through the write lock; pure
// reads (summaries, result, export) share the read lock. Proposal
// paths (Propose/TopK) mutate strategy caches and the skip set even on
// read paths, so they get their own innermost mutex, letting /next and
// /topk still run under the read lock concurrently with /result. Lock
// order: mu before pickMu.
type liveSession struct {
	mu         sync.RWMutex
	sess       *jim.Session
	createdAt  time.Time
	lastAccess atomic.Int64 // unix nanos; maintained by touch

	pickMu sync.Mutex

	// Durability bookkeeping (meaningful only with a durable store).
	// seed is the strategy seed from creation, recorded in snapshots so
	// a recovered randomized session draws identically.
	seed int64
	// walEvents counts events logged since the last snapshot; the
	// snapshot policy (size and age) keys off it.
	walEvents atomic.Int64
	// snapInFlight limits the session to one asynchronous size-policy
	// snapshot at a time.
	snapInFlight atomic.Bool
	// lastSnapshot is the unix-nano time of this session's last
	// snapshot.
	lastSnapshot atomic.Int64
	// deleted marks an explicitly deleted session (guarded by mu). It
	// fences late persistence: a request that resolved the session
	// before DELETE removed it must not re-create on-disk state the
	// delete just compacted away.
	deleted bool
	// replSeq numbers this session's replication stream (cluster mode):
	// every shipped event carries replSeq+1, every shipped snapshot the
	// current value, and the follower dedups resync replays against it.
	// It is a separate numbering space from the durable store's own
	// sequence, which the store assigns internally.
	replSeq atomic.Uint64
}

// New returns an empty server with demo defaults (no cap, no TTL, no
// durability).
func New() *Server { return NewWith(Config{}) }

// NewWith returns an empty server with the given lifecycle config.
// With a durable store configured, call Restore next to reload
// persisted sessions before serving traffic.
func NewWith(cfg Config) *Server {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	if cfg.Store == nil {
		cfg.Store = store.NewMem()
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	return &Server{
		cfg:           cfg,
		sessions:      newTable(),
		metrics:       newMetrics(now()),
		durable:       cfg.Store.Name() != "mem",
		snapshotEvery: cfg.SnapshotEvery,
		now:           now,
	}
}

// Handler returns the HTTP API. Versioned routes:
//
//	POST   /v1/sessions              create from {"csv": ..., "strategy": ...}
//	GET    /v1/sessions              list session summaries (?limit=, ?offset=)
//	POST   /v1/sessions/import       create from an exported session file
//	GET    /v1/strategies            available strategies and the default
//	GET    /v1/sessions/{id}         session summary
//	DELETE /v1/sessions/{id}         drop the session
//	GET    /v1/sessions/{id}/next    next proposed tuple (or done)
//	GET    /v1/sessions/{id}/topk    k most informative tuples (?k=3)
//	POST   /v1/sessions/{id}/label   {"index": i, "label": "+"|"-"|"skip"}
//	POST   /v1/sessions/{id}/tuples  stream new tuples into the instance
//	GET    /v1/sessions/{id}/result  inferred predicate, SQL, certainty
//	GET    /v1/sessions/{id}/export  persistable session file
//	GET    /v1/stats                 service counters and latency quantiles
//	GET    /v1/cluster               cluster membership view (cluster mode)
//	GET    /v1/cluster/probe         second-opinion liveness probe of a peer
//	POST   /v1/cluster/promote       mark a peer failed, adopt its replicas
//	POST   /v1/cluster/rejoin        hand a restarted peer its range back
//	POST   /v1/cluster/rebalance     ship misplaced ranges after a peer-set change
//	POST   /v1/cluster/drain         snapshot + sync everything to the follower
//
// Every pre-versioning route (the same paths without the /v1 prefix)
// still answers, delegating to the same handler, with a
// "Deprecation: true" header and a Link to the /v1 successor.
// GET /v1/strategies is new in v1 and has no legacy alias.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.HandleFunc(rt.method+" /"+APIVersion+rt.path, rt.handler)
		if !rt.v1Only {
			mux.HandleFunc(rt.method+" "+rt.path, deprecated(rt.handler))
		}
	}
	// The liveness/role probe lives outside the versioned API on
	// purpose: load balancers and failover detectors probe a fixed,
	// unversioned path.
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s.instrument(mux)
}

// route is one entry of the wire contract: a versioned endpoint and
// whether its pre-versioning alias still answers.
type route struct {
	method string
	// path is the route pattern without the version prefix, e.g.
	// "/sessions/{id}/next".
	path    string
	handler http.HandlerFunc
	// v1Only marks endpoints added after versioning: no legacy alias.
	v1Only bool
}

// routes is the single registration table Handler builds the mux from
// and Routes exposes — the documentation test in docs_test.go holds
// API.md to exactly this list, so the reference cannot drift from the
// code.
func (s *Server) routes() []route {
	return []route{
		{"POST", "/sessions", s.handleCreate, false},
		{"GET", "/sessions", s.handleList, false},
		{"POST", "/sessions/import", s.handleImport, false},
		{"GET", "/stats", s.handleStats, false},
		{"GET", "/sessions/{id}", s.readSession(s.handleSummary), false},
		{"DELETE", "/sessions/{id}", s.handleDelete, false},
		{"GET", "/sessions/{id}/next", s.readSession(s.handleNext), false},
		{"GET", "/sessions/{id}/topk", s.readSession(s.handleTopK), false},
		{"POST", "/sessions/{id}/label", s.writeSession(s.handleLabel), false},
		{"POST", "/sessions/{id}/step", s.writeSession(s.handleStep), true},
		{"POST", "/sessions/{id}/tuples", s.writeSession(s.handleAppend), false},
		{"GET", "/sessions/{id}/result", s.readSession(s.handleResult), false},
		{"GET", "/sessions/{id}/export", s.readSession(s.handleExport), false},
		{"GET", "/strategies", s.handleStrategies, true},
		{"GET", "/cluster", s.handleCluster, true},
		{"GET", "/cluster/probe", s.handleClusterProbe, true},
		{"POST", "/cluster/promote", s.handlePromote, true},
		{"POST", "/cluster/rejoin", s.handleRejoin, true},
		{"POST", "/cluster/rebalance", s.handleRebalance, true},
		{"POST", "/cluster/drain", s.handleDrain, true},
	}
}

// Routes returns every versioned endpoint as "METHOD /v1/path", sorted
// — the machine-readable wire contract, used by the docs-consistency
// test.
func (s *Server) Routes() []string {
	var out []string
	for _, rt := range s.routes() {
		out = append(out, rt.method+" /"+APIVersion+rt.path)
	}
	sort.Strings(out)
	return out
}

// deprecated marks a legacy unversioned route: same behavior, plus the
// Deprecation header (RFC 8594 style) and a pointer to the successor.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</%s%s>; rel=\"successor-version\"", APIVersion, r.URL.Path))
		h(w, r)
	}
}

// limitBody applies Config.MaxBodyBytes to an ingestion request. The
// returned reader fails with *http.MaxBytesError once the cap is hit;
// bodyError maps that onto 413.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	if s.cfg.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
}

// bodyError writes the right envelope for a request-body read failure:
// body_too_large (413) when the cap was exceeded, bad_input (400) with
// the error otherwise. It is the single classification site for
// body-limit handling.
func bodyError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, jim.CodeBodyTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		return
	}
	writeError(w, jim.CodeBadInput, "%v", err)
}

type createRequest struct {
	CSV      string `json:"csv"`
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
}

type sessionSummary struct {
	ID        string    `json:"id"`
	Strategy  string    `json:"strategy"`
	CreatedAt time.Time `json:"created_at"`
	Tuples    int       `json:"tuples"`
	// BaseTuples is the instance size at creation; AppendedTuples
	// counts arrivals streamed in afterwards (Tuples = base + appended).
	BaseTuples     int      `json:"base_tuples"`
	AppendedTuples int      `json:"appended_tuples"`
	Attributes     []string `json:"attributes"`
	Labels         int      `json:"labels"`
	Implied        int      `json:"implied"`
	Informative    int      `json:"informative"`
	Done           bool     `json:"done"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		bodyError(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Strategy == "" {
		req.Strategy = jim.DefaultStrategy
	}
	rel, typing, err := readCSVStringTyped(req.CSV)
	if err != nil {
		writeError(w, jim.CodeBadInput, "%v", err)
		return
	}
	// The creation typing is always retained — an all-inference typing
	// included — so arrival parsing never honors an append body's own
	// header annotations; the same cells must parse the same way
	// whatever encoding or header they arrive with.
	sess, err := jim.NewSession(rel,
		jim.WithStrategy(req.Strategy),
		jim.WithSeed(req.Seed),
		jim.WithTyping(typing),
		jim.WithRedeferLimit(-1))
	if err != nil {
		writeTypedError(w, err)
		return
	}
	s.create(w, &liveSession{sess: sess, createdAt: s.now(), seed: req.Seed})
}

// handleImport restores a session from an exported file. Session
// files carry exact tagged values rather than a CSV header, so an
// imported session has no creation typing: arrivals appended to it
// parse with per-cell inference, pinned (like every session) so an
// append body's own header annotations are ignored.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	st, meta, err := session.Load(r.Body)
	if err != nil {
		bodyError(w, err)
		return
	}
	name := meta.Strategy
	if name == "" {
		name = jim.DefaultStrategy
	}
	sess, err := jim.ResumeSession(st,
		jim.WithStrategy(name),
		jim.WithRedeferLimit(-1))
	if err != nil {
		writeTypedError(w, err)
		return
	}
	s.create(w, &liveSession{sess: sess, createdAt: s.now()})
}

// create registers a fresh session through the shared apply layer
// (register in apply.go) and writes the HTTP envelope.
func (s *Server) create(w http.ResponseWriter, ls *liveSession) {
	_, summary, err := s.register(ls)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, summary)
}

// listResponse is one page of session summaries, ordered by id, plus
// the durability block operators poll: which backend is holding the
// sessions, how many of the live ones were replayed from it at
// startup, and how stale the newest snapshot is.
type listResponse struct {
	Sessions []sessionSummary `json:"sessions"`
	Total    int              `json:"total"`
	Limit    int              `json:"limit"`
	Offset   int              `json:"offset"`
	Store    storeStats       `json:"store"`
}

// handleList serves a stable page of session summaries: sessions are
// ordered by id, so pages do not shuffle between requests, and the
// page size is capped so a table of a million sessions cannot be
// serialized in one response.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit", DefaultListLimit, 1, MaxListLimit)
	if err != nil {
		writeError(w, jim.CodeBadInput, "%v", err)
		return
	}
	offset, err := queryInt(r, "offset", 0, 0, int(^uint(0)>>1))
	if err != nil {
		writeError(w, jim.CodeBadInput, "%v", err)
		return
	}
	type entry struct {
		id string
		ls *liveSession
	}
	var all []entry
	s.sessions.forEach(func(id string, ls *liveSession) {
		all = append(all, entry{id, ls})
	})
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	resp := listResponse{
		Sessions: []sessionSummary{},
		Total:    len(all),
		Limit:    limit,
		Offset:   offset,
		Store:    s.storeStats(),
	}
	for i := offset; i < len(all) && i < offset+limit; i++ {
		e := all[i]
		e.ls.mu.RLock()
		resp.Sessions = append(resp.Sessions, summarize(e.id, e.ls))
		e.ls.mu.RUnlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryInt parses an optional integer query parameter with bounds.
// Values above max clamp for limit-style knobs; below min is an error.
func queryInt(r *http.Request, name string, def, min, max int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	if v < min {
		return 0, fmt.Errorf("%s must be >= %d, got %d", name, min, v)
	}
	if v > max {
		v = max
	}
	return v, nil
}

// strategyInfo describes one entry of GET /v1/strategies.
type strategyInfo struct {
	Name string `json:"name"`
	// Heuristic marks the polynomial-time strategies; the one
	// non-heuristic entry (optimal) is exponential and only usable on
	// tiny instances.
	Heuristic bool `json:"heuristic"`
}

type strategiesResponse struct {
	Strategies []strategyInfo `json:"strategies"`
	Default    string         `json:"default"`
}

// handleStrategies serves the strategy discovery endpoint, so clients
// can populate pickers without hardcoding the registry.
func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	heuristic := make(map[string]bool)
	for _, n := range strategy.HeuristicNames() {
		heuristic[n] = true
	}
	resp := strategiesResponse{Default: jim.DefaultStrategy}
	for _, n := range strategy.Names() {
		resp.Strategies = append(resp.Strategies, strategyInfo{Name: n, Heuristic: heuristic[n]})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if id := r.PathValue("id"); !s.ownsID(id) {
		s.routeAway(w, r, id)
		return
	}
	if err := s.deleteSession(r.PathValue("id")); err != nil {
		writeTypedError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type sessionHandler func(http.ResponseWriter, *http.Request, string, *liveSession)

// readSession resolves {id} and runs h under the session's read lock:
// many such requests proceed concurrently on one session.
func (s *Server) readSession(h sessionHandler) http.HandlerFunc {
	return s.withSession(h, false)
}

// writeSession resolves {id} and runs h under the session's write
// lock, excluding all other requests on that session only.
func (s *Server) writeSession(h sessionHandler) http.HandlerFunc {
	return s.withSession(h, true)
}

func (s *Server) withSession(h sessionHandler, write bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !s.ownsID(id) {
			s.routeAway(w, r, id)
			return
		}
		ls, err := s.lookup(id)
		if err != nil {
			writeTypedError(w, err)
			return
		}
		if write {
			ls.mu.Lock()
			defer ls.mu.Unlock()
		} else {
			ls.mu.RLock()
			defer ls.mu.RUnlock()
		}
		h(w, r, id, ls)
	}
}

// summarize builds a summary. Caller holds ls.mu (either mode).
func summarize(id string, ls *liveSession) sessionSummary {
	st := ls.sess.State()
	p := st.Progress()
	return sessionSummary{
		ID:             id,
		Strategy:       ls.sess.Strategy(),
		CreatedAt:      ls.createdAt,
		Tuples:         p.Total,
		BaseTuples:     st.BaseLen(),
		AppendedTuples: st.Appended(),
		Attributes:     st.Relation().Schema().Names(),
		Labels:         p.Explicit,
		Implied:        p.Implied,
		Informative:    p.Informative,
		Done:           st.Done(),
	}
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	writeJSON(w, http.StatusOK, summarize(id, ls))
}

type tupleView struct {
	Index  int               `json:"index"`
	Values map[string]string `json:"values"`
}

func viewTuple(ls *liveSession, i int) tupleView {
	rel := ls.sess.Relation()
	vals := make(map[string]string, rel.Schema().Len())
	for c, name := range rel.Schema().Names() {
		vals[name] = rel.Tuple(i)[c].String()
	}
	return tupleView{Index: i, Values: vals}
}

type nextResponse struct {
	Done  bool       `json:"done"`
	Tuple *tupleView `json:"tuple,omitempty"`
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	i, ok, err := s.proposeOne(id, ls)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	if !ok {
		writeJSON(w, http.StatusOK, nextResponse{Done: ls.sess.Done()})
		return
	}
	tv := viewTuple(ls, i)
	writeJSON(w, http.StatusOK, nextResponse{Done: false, Tuple: &tv})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	k := 3
	if kq := r.URL.Query().Get("k"); kq != "" {
		parsed, err := strconv.Atoi(kq)
		if err != nil || parsed < 1 {
			writeError(w, jim.CodeBadInput, "bad k %q", kq)
			return
		}
		k = parsed
	}
	indices, err := s.rankK(ls, k)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	out := make([]tupleView, 0, len(indices))
	for _, i := range indices {
		out = append(out, viewTuple(ls, i))
	}
	writeJSON(w, http.StatusOK, map[string]any{"tuples": out, "done": ls.sess.Done()})
}

type labelRequest struct {
	Index int    `json:"index"`
	Label string `json:"label"` // "+", "-", or "skip"
}

type labelResponse struct {
	NewlyImplied []int  `json:"newly_implied"`
	Informative  int    `json:"informative"`
	Done         bool   `json:"done"`
	Progress     string `json:"progress"`
}

func (ls *liveSession) labelResponse(newly []int) labelResponse {
	if newly == nil {
		newly = []int{}
	}
	p := ls.sess.Progress()
	return labelResponse{
		NewlyImplied: newly,
		Informative:  p.Informative,
		Done:         ls.sess.Done(),
		Progress:     p.String(),
	}
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	var req labelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, jim.CodeBadInput, "decoding request: %v", err)
		return
	}
	resp, ok := s.applyLabel(w, id, ls, req.Index, req.Label)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// applyLabel is the HTTP wrapper over applyAnswer (apply.go): same
// apply-and-persist step, envelope written on failure. ok=false means
// the error envelope has already been written. The caller holds the
// session's write lock.
func (s *Server) applyLabel(w http.ResponseWriter, id string, ls *liveSession, index int, label string) (labelResponse, bool) {
	newly, err := s.applyAnswer(id, ls, index, label)
	if err != nil {
		writeTypedError(w, err)
		return labelResponse{}, false
	}
	return ls.labelResponse(newly), true
}

// stepRequest drives one full dialogue step in a single round trip:
// optionally answer the previous proposal, then return the next one.
// label may be empty (propose only — the natural first call); when it
// is set, index must be too. k asks for a ranked batch instead of a
// single proposal.
type stepRequest struct {
	Index *int   `json:"index,omitempty"`
	Label string `json:"label,omitempty"` // "+", "-", "skip", or empty
	K     int    `json:"k,omitempty"`     // proposals wanted; 0 or 1 = single
}

// stepResponse is the combined answer/proposal result. applied is
// absent on a propose-only call; tuple carries the single next
// proposal, tuples the ranked batch when k > 1. done=true with no
// proposal means the answer converged the session.
type stepResponse struct {
	Applied *labelResponse `json:"applied,omitempty"`
	Done    bool           `json:"done"`
	Tuple   *tupleView     `json:"tuple,omitempty"`
	Tuples  []tupleView    `json:"tuples,omitempty"`
}

// handleStep atomically applies an answer and proposes what to ask
// next — the one-round-trip form of POST /label followed by GET /next
// (or /topk). The whole step runs under the session's write lock, so
// the proposal is ranked against exactly the state the answer left
// behind; an answer that fails leaves the session unchanged and
// returns the same error envelope POST /label would. With k > 1 the
// batch comes from the ranking path (like GET /topk, skips are not
// routed around); the default single proposal routes around skipped
// classes exactly like GET /next.
func (s *Server) handleStep(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	var req stepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, jim.CodeBadInput, "decoding request: %v", err)
		return
	}
	if req.K < 0 {
		writeError(w, jim.CodeBadInput, "bad k %d", req.K)
		return
	}
	var applied *labelResponse
	switch {
	case req.Label != "" && req.Index == nil:
		writeError(w, jim.CodeBadInput, "label %q without an index", req.Label)
		return
	case req.Label == "" && req.Index != nil:
		writeError(w, jim.CodeBadInput, "index %d without a label", *req.Index)
		return
	case req.Label != "":
		resp, ok := s.applyLabel(w, id, ls, *req.Index, req.Label)
		if !ok {
			return
		}
		applied = &resp
	}
	if req.K > 1 {
		indices, err := s.rankK(ls, req.K)
		if err != nil {
			writeTypedError(w, err)
			return
		}
		out := make([]tupleView, 0, len(indices))
		for _, i := range indices {
			out = append(out, viewTuple(ls, i))
		}
		writeJSON(w, http.StatusOK, stepResponse{Applied: applied, Done: ls.sess.Done(), Tuples: out})
		return
	}
	// Single proposal: same skip-routing and clear-event persistence as
	// GET /next (see proposeOne for why the clear must reach the WAL).
	i, ok, err := s.proposeOne(id, ls)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	if !ok {
		writeJSON(w, http.StatusOK, stepResponse{Applied: applied, Done: ls.sess.Done()})
		return
	}
	tv := viewTuple(ls, i)
	writeJSON(w, http.StatusOK, stepResponse{Applied: applied, Done: false, Tuple: &tv})
}

// appendRequest carries arrival tuples in one of two encodings:
// CSV with a header that must match the session schema exactly, or
// raw string rows parsed cell-by-cell (values.Parse inference, same
// as untyped CSV columns). Exactly one of the two must be set.
type appendRequest struct {
	CSV  string     `json:"csv,omitempty"`
	Rows [][]string `json:"rows,omitempty"`
}

type appendResponse struct {
	Appended     int    `json:"appended"`
	Tuples       int    `json:"tuples"`
	NewlyImplied []int  `json:"newly_implied"`
	Informative  int    `json:"informative"`
	Done         bool   `json:"done"`
	Progress     string `json:"progress"`
}

// handleAppend streams new tuples into a live session — the write-path
// counterpart of create for instances that grow while the user labels.
// Arrivals whose schema does not match the session's fail with 409
// Conflict and leave the session untouched.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	s.limitBody(w, r)
	var req appendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		bodyError(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	var (
		tuples []jim.Tuple
		err    error
	)
	switch {
	case req.CSV != "" && req.Rows != nil:
		writeError(w, jim.CodeBadInput, "pass csv or rows, not both")
		return
	case req.CSV != "":
		tuples, err = ls.sess.ParseCSV(req.CSV)
	case len(req.Rows) > 0:
		tuples, err = ls.sess.ParseRows(req.Rows)
	default:
		writeError(w, jim.CodeBadInput, "empty append: pass csv or rows")
		return
	}
	if err != nil {
		writeTypedError(w, err)
		return
	}
	if len(tuples) == 0 {
		// A header-only CSV carries no arrivals: same contract as an
		// empty rows list, and no metric or skip-state side effects.
		writeError(w, jim.CodeBadInput, "empty append: no tuples in body")
		return
	}
	newly, err := s.applyAppend(id, ls, tuples)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	if newly == nil {
		newly = []int{}
	}
	p := ls.sess.Progress()
	writeJSON(w, http.StatusOK, appendResponse{
		Appended:     len(tuples),
		Tuples:       p.Total,
		NewlyImplied: newly,
		Informative:  p.Informative,
		Done:         ls.sess.Done(),
		Progress:     p.String(),
	})
}

type resultResponse struct {
	Done       bool   `json:"done"`
	Predicate  string `json:"predicate"`
	Atoms      string `json:"atoms"`
	SQL        string `json:"sql"`
	Certain    string `json:"certain,omitempty"`
	Undecided  string `json:"undecided,omitempty"`
	Consistent int    `json:"consistent_queries,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	st := ls.sess.State()
	names := st.Relation().Schema().Names()
	q := ls.sess.Result()
	sql, err := sqlgen.SelectSQL("instance", st.Relation().Schema(), q)
	if err != nil {
		writeError(w, jim.CodeInternal, "%v", err)
		return
	}
	resp := resultResponse{
		Done:      ls.sess.Done(),
		Predicate: q.String(),
		Atoms:     q.FormatAtoms(names),
		SQL:       sql,
	}
	// Certainty panel for demo-scale instances only.
	if vs, err := st.VersionSpace(100_000); err == nil {
		resp.Certain = jim.FormatPairs(vs.CertainPairs(), names)
		resp.Undecided = jim.FormatPairs(vs.UndecidedPairs(), names)
		resp.Consistent = st.CountConsistent()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExport buffers the session file before writing, so a Save
// failure still yields a clean error envelope instead of a committed
// 200 with a truncated body (session files are demo-scale; buffering
// one is cheap next to streaming invalid JSON).
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	meta := session.Meta{Strategy: ls.sess.Strategy(), CreatedAt: ls.createdAt}
	var buf bytes.Buffer
	if err := session.Save(&buf, ls.sess.State(), meta); err != nil {
		writeError(w, jim.CodeInternal, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = buf.WriteTo(w)
}

// readCSVStringTyped parses the create-time CSV payload, returning the
// header's typing for the session to pin.
func readCSVStringTyped(csv string) (*relation.Relation, *relation.Typing, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil, fmt.Errorf("server: empty csv")
	}
	return relation.ReadCSVTyped(strings.NewReader(csv), relation.CSVOptions{})
}

// wireError is the structured error envelope of the versioned API:
// {"error":{"code":"...","message":"..."}}. Codes come from the public
// jim taxonomy; the HTTP status is derived from the code, so the two
// can never disagree.
type wireError struct {
	Code    jim.ErrorCode `json:"code"`
	Message string        `json:"message"`
}

type errorEnvelope struct {
	Error wireError `json:"error"`
}

// writeError writes an envelope for a code with a formatted message.
func writeError(w http.ResponseWriter, code jim.ErrorCode, format string, args ...any) {
	writeJSON(w, code.HTTPStatus(), errorEnvelope{Error: wireError{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// writeTypedError maps an error from the jim layer onto the envelope.
// Errors outside the taxonomy become code "internal".
func writeTypedError(w http.ResponseWriter, err error) {
	if code := jim.CodeOf(err); code != "" {
		var je *jim.Error
		errors.As(err, &je)
		writeJSON(w, code.HTTPStatus(), errorEnvelope{Error: wireError{Code: code, Message: je.Message}})
		return
	}
	writeError(w, jim.CodeInternal, "%v", err)
}

// jsonBuf pairs a reusable encode buffer with a json.Encoder bound to
// it, so the per-response cost of the HTTP path is one pool round trip
// instead of a fresh encoder + growing buffer per call.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{New: func() any {
	b := &jsonBuf{}
	b.enc = json.NewEncoder(&b.buf)
	b.enc.SetIndent("", "  ")
	return b
}}

// jsonBufMaxCap bounds what goes back into the pool: a rare huge
// response (a big list page) must not pin its buffer forever.
const jsonBufMaxCap = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	b := jsonBufPool.Get().(*jsonBuf)
	b.buf.Reset()
	if err := b.enc.Encode(v); err != nil {
		// Unreachable for the server's own response types; keep the
		// envelope shape anyway rather than emitting a truncated body.
		jsonBufPool.Put(b)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\":{\"code\":%q,\"message\":\"encoding response\"}}\n", jim.CodeInternal)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(b.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(b.buf.Bytes())
	if b.buf.Cap() <= jsonBufMaxCap {
		jsonBufPool.Put(b)
	}
}
