// Package server exposes JIM over HTTP: sessions are created from a
// CSV instance, the client fetches the next proposed tuple, posts
// yes/no/skip answers, and reads the inferred predicate — the
// demonstration's web tool as a JSON API. State lives in memory; the
// export/import endpoints round-trip the session-file format of
// package session for persistence.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/session"
	"repro/internal/sqlgen"
	"repro/internal/strategy"
)

// Server is an in-memory multi-session JIM service. The zero value is
// not usable; call New.
type Server struct {
	mu       sync.Mutex
	sessions map[string]*liveSession
	nextID   int
	// now is injectable for tests.
	now func() time.Time
}

type liveSession struct {
	st           *core.State
	picker       core.KPicker
	strategyName string
	createdAt    time.Time
	deferred     map[int]bool // group head index -> deferred (skip answers)
}

// New returns an empty server.
func New() *Server {
	return &Server{
		sessions: make(map[string]*liveSession),
		now:      time.Now,
	}
}

// Handler returns the HTTP API:
//
//	POST   /sessions              create from {"csv": ..., "strategy": ...}
//	GET    /sessions              list session summaries
//	POST   /sessions/import       create from an exported session file
//	GET    /sessions/{id}         session summary
//	DELETE /sessions/{id}         drop the session
//	GET    /sessions/{id}/next    next proposed tuple (or done)
//	GET    /sessions/{id}/topk    k most informative tuples (?k=3)
//	POST   /sessions/{id}/label   {"index": i, "label": "+"|"-"|"skip"}
//	GET    /sessions/{id}/result  inferred predicate, SQL, certainty
//	GET    /sessions/{id}/export  persistable session file
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.handleCreate)
	mux.HandleFunc("GET /sessions", s.handleList)
	mux.HandleFunc("POST /sessions/import", s.handleImport)
	mux.HandleFunc("GET /sessions/{id}", s.withSession(s.handleSummary))
	mux.HandleFunc("DELETE /sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /sessions/{id}/next", s.withSession(s.handleNext))
	mux.HandleFunc("GET /sessions/{id}/topk", s.withSession(s.handleTopK))
	mux.HandleFunc("POST /sessions/{id}/label", s.withSession(s.handleLabel))
	mux.HandleFunc("GET /sessions/{id}/result", s.withSession(s.handleResult))
	mux.HandleFunc("GET /sessions/{id}/export", s.withSession(s.handleExport))
	return mux
}

type createRequest struct {
	CSV      string `json:"csv"`
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
}

type sessionSummary struct {
	ID          string    `json:"id"`
	Strategy    string    `json:"strategy"`
	CreatedAt   time.Time `json:"created_at"`
	Tuples      int       `json:"tuples"`
	Attributes  []string  `json:"attributes"`
	Labels      int       `json:"labels"`
	Implied     int       `json:"implied"`
	Informative int       `json:"informative"`
	Done        bool      `json:"done"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Strategy == "" {
		req.Strategy = "lookahead-maxmin"
	}
	picker, err := strategy.ByName(req.Strategy, req.Seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rel, err := readCSVString(req.CSV)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, err := core.NewState(rel)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	id := s.register(&liveSession{
		st: st, picker: picker, strategyName: req.Strategy,
		createdAt: s.now(), deferred: map[int]bool{},
	})
	summary := s.summaryLocked(id)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, summary)
}

func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	st, meta, err := session.Load(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	name := meta.Strategy
	if name == "" {
		name = "lookahead-maxmin"
	}
	picker, err := strategy.ByName(name, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	id := s.register(&liveSession{
		st: st, picker: picker, strategyName: name,
		createdAt: s.now(), deferred: map[int]bool{},
	})
	summary := s.summaryLocked(id)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, summary)
}

// register stores a new session and returns its id. Caller holds mu.
func (s *Server) register(ls *liveSession) string {
	s.nextID++
	id := fmt.Sprintf("s%04d", s.nextID)
	s.sessions[id] = ls
	return id
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]sessionSummary, 0, len(s.sessions))
	for id := range s.sessions {
		out = append(out, s.summaryLocked(id))
	}
	s.mu.Unlock()
	// Stable order for clients.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// withSession resolves the {id} path parameter under the server lock.
func (s *Server) withSession(h func(http.ResponseWriter, *http.Request, string, *liveSession)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.Lock()
		defer s.mu.Unlock()
		ls, ok := s.sessions[id]
		if !ok {
			httpError(w, http.StatusNotFound, "no session %q", id)
			return
		}
		h(w, r, id, ls)
	}
}

// summaryLocked builds a summary; caller holds mu.
func (s *Server) summaryLocked(id string) sessionSummary {
	ls := s.sessions[id]
	p := ls.st.Progress()
	return sessionSummary{
		ID:          id,
		Strategy:    ls.strategyName,
		CreatedAt:   ls.createdAt,
		Tuples:      p.Total,
		Attributes:  ls.st.Relation().Schema().Names(),
		Labels:      p.Explicit,
		Implied:     p.Implied,
		Informative: p.Informative,
		Done:        ls.st.Done(),
	}
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	writeJSON(w, http.StatusOK, s.summaryLocked(id))
}

type tupleView struct {
	Index  int               `json:"index"`
	Values map[string]string `json:"values"`
}

func viewTuple(ls *liveSession, i int) tupleView {
	rel := ls.st.Relation()
	vals := make(map[string]string, rel.Schema().Len())
	for c, name := range rel.Schema().Names() {
		vals[name] = rel.Tuple(i)[c].String()
	}
	return tupleView{Index: i, Values: vals}
}

type nextResponse struct {
	Done  bool       `json:"done"`
	Tuple *tupleView `json:"tuple,omitempty"`
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	i, ok := ls.next()
	if !ok {
		writeJSON(w, http.StatusOK, nextResponse{Done: ls.st.Done()})
		return
	}
	tv := viewTuple(ls, i)
	writeJSON(w, http.StatusOK, nextResponse{Done: false, Tuple: &tv})
}

// next picks the next informative non-deferred tuple.
func (ls *liveSession) next() (int, bool) {
	i, ok := ls.picker.Pick(ls.st)
	if !ok {
		return 0, false
	}
	if !ls.deferred[ls.st.GroupOf(i).Indices[0]] {
		return i, true
	}
	for _, j := range ls.picker.PickK(ls.st, len(ls.st.Groups())) {
		if !ls.deferred[ls.st.GroupOf(j).Indices[0]] {
			return j, true
		}
	}
	// Everything deferred: re-offer (the client explicitly skipped, so
	// looping back is the only option left).
	ls.deferred = map[int]bool{}
	return i, true
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	k := 3
	if kq := r.URL.Query().Get("k"); kq != "" {
		parsed, err := strconv.Atoi(kq)
		if err != nil || parsed < 1 {
			httpError(w, http.StatusBadRequest, "bad k %q", kq)
			return
		}
		k = parsed
	}
	indices := ls.picker.PickK(ls.st, k)
	out := make([]tupleView, 0, len(indices))
	for _, i := range indices {
		out = append(out, viewTuple(ls, i))
	}
	writeJSON(w, http.StatusOK, map[string]any{"tuples": out, "done": ls.st.Done()})
}

type labelRequest struct {
	Index int    `json:"index"`
	Label string `json:"label"` // "+", "-", or "skip"
}

type labelResponse struct {
	NewlyImplied []int  `json:"newly_implied"`
	Informative  int    `json:"informative"`
	Done         bool   `json:"done"`
	Progress     string `json:"progress"`
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	var req labelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Index < 0 || req.Index >= ls.st.Relation().Len() {
		httpError(w, http.StatusBadRequest, "index %d out of range", req.Index)
		return
	}
	var l core.Label
	switch req.Label {
	case "+", "yes", "y":
		l = core.Positive
	case "-", "no", "n":
		l = core.Negative
	case "skip", "s", "?":
		ls.deferred[ls.st.GroupOf(req.Index).Indices[0]] = true
		writeJSON(w, http.StatusOK, labelResponse{
			Informative: ls.st.InformativeCount(),
			Done:        ls.st.Done(),
			Progress:    ls.st.Progress().String(),
		})
		return
	default:
		httpError(w, http.StatusBadRequest, "unknown label %q (want +, -, or skip)", req.Label)
		return
	}
	newly, err := ls.st.Apply(req.Index, l)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	// A new label may unblock deferred classes.
	ls.deferred = map[int]bool{}
	if newly == nil {
		newly = []int{}
	}
	writeJSON(w, http.StatusOK, labelResponse{
		NewlyImplied: newly,
		Informative:  ls.st.InformativeCount(),
		Done:         ls.st.Done(),
		Progress:     ls.st.Progress().String(),
	})
}

type resultResponse struct {
	Done       bool   `json:"done"`
	Predicate  string `json:"predicate"`
	Atoms      string `json:"atoms"`
	SQL        string `json:"sql"`
	Certain    string `json:"certain,omitempty"`
	Undecided  string `json:"undecided,omitempty"`
	Consistent int    `json:"consistent_queries,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	names := ls.st.Relation().Schema().Names()
	q := ls.st.Result()
	sql, err := sqlgen.SelectSQL("instance", ls.st.Relation().Schema(), q)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := resultResponse{
		Done:      ls.st.Done(),
		Predicate: q.String(),
		Atoms:     q.FormatAtoms(names),
		SQL:       sql,
	}
	// Certainty panel for demo-scale instances only.
	if vs, err := ls.st.VersionSpace(100_000); err == nil {
		resp.Certain = core.FormatPairs(vs.CertainPairs(), names)
		resp.Undecided = core.FormatPairs(vs.UndecidedPairs(), names)
		resp.Consistent = ls.st.CountConsistent()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request, id string, ls *liveSession) {
	w.Header().Set("Content-Type", "application/json")
	meta := session.Meta{Strategy: ls.strategyName, CreatedAt: ls.createdAt}
	if err := session.Save(w, ls.st, meta); err != nil {
		// Headers already sent; best effort.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}

func readCSVString(csv string) (*relation.Relation, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, fmt.Errorf("server: empty csv")
	}
	return relation.ReadCSV(strings.NewReader(csv), relation.CSVOptions{})
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
