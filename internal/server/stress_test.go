package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
)

// TestStressOverlappingSessions hammers a small pool of shared
// sessions from hundreds of goroutines mixing /label, /next, /topk,
// and DELETE (with recreation). Run under -race this is the lost
// update / deadlock detector for the sharded, per-session locking:
// every response must be one of the well-defined statuses and the
// server must stay responsive afterward.
func TestStressOverlappingSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	ts := newTestServer(t)
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 64

	const sessions = 8
	const workers = 200
	const opsPerWorker = 25

	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = createSession(t, ts, "lookahead-maxmin").ID
	}

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusCreated:             true,
		http.StatusNoContent:           true,
		http.StatusBadRequest:          true, // label index out of range after races
		http.StatusNotFound:            true, // session deleted by a peer
		http.StatusConflict:            true, // contradictory label, or skip after done
		http.StatusUnprocessableEntity: true, // relabeling a tuple a peer labeled
		http.StatusTooManyRequests:     true,
	}

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for op := 0; op < opsPerWorker; op++ {
				id := ids[rng.Intn(sessions)]
				var (
					resp *http.Response
					err  error
				)
				switch rng.Intn(10) {
				case 0: // delete, then recreate so the pool stays busy
					req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+id, nil)
					resp, err = client.Do(req)
					if err == nil {
						resp.Body.Close()
						data, _ := json.Marshal(map[string]any{"csv": travelCSV})
						resp, err = client.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(data))
					}
				case 1, 2, 3: // label a random tuple with a random answer
					label := [3]string{"+", "-", "skip"}[rng.Intn(3)]
					data, _ := json.Marshal(map[string]any{"index": rng.Intn(12), "label": label})
					resp, err = client.Post(ts.URL+"/v1/sessions/"+id+"/label", "application/json", bytes.NewReader(data))
				case 4, 5, 6: // next
					resp, err = client.Get(ts.URL + "/v1/sessions/" + id + "/next")
				case 7, 8: // topk
					resp, err = client.Get(fmt.Sprintf("%s/sessions/%s/topk?k=%d", ts.URL, id, 1+rng.Intn(5)))
				default: // result / summary readers
					if rng.Intn(2) == 0 {
						resp, err = client.Get(ts.URL + "/v1/sessions/" + id + "/result")
					} else {
						resp, err = client.Get(ts.URL + "/v1/sessions/" + id)
					}
				}
				if err != nil {
					errc <- fmt.Errorf("worker %d op %d: %v", w, op, err)
					return
				}
				if !allowed[resp.StatusCode] {
					errc <- fmt.Errorf("worker %d op %d: status %d", w, op, resp.StatusCode)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The service must still answer coherently after the storm.
	var list listBody
	doJSON(t, "GET", ts.URL+"/v1/sessions", nil, http.StatusOK, &list)
	for _, s := range list.Sessions {
		var res result
		doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/result", nil, http.StatusOK, &res)
		if res.SQL == "" {
			t.Errorf("session %s: empty SQL after stress", s.ID)
		}
	}
	var stats struct {
		Sessions struct {
			Active  int64 `json:"active"`
			Created int64 `json:"created"`
			Deleted int64 `json:"deleted"`
		} `json:"sessions"`
	}
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &stats)
	if int(stats.Sessions.Active) != list.Total {
		t.Errorf("stats active = %d, list total = %d", stats.Sessions.Active, list.Total)
	}
	if stats.Sessions.Created-stats.Sessions.Deleted != stats.Sessions.Active {
		t.Errorf("created-deleted=%d, active=%d",
			stats.Sessions.Created-stats.Sessions.Deleted, stats.Sessions.Active)
	}
}
