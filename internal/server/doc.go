// Package server exposes JIM over HTTP: sessions are created from a
// CSV instance, the client fetches the next proposed tuple, posts
// yes/no/skip answers, and reads the inferred predicate — the
// demonstration's web tool as a JSON API, hardened for concurrent
// service.
//
// # Wire contract
//
// The contract is versioned: every endpoint lives under /v1/ and
// failures are a structured envelope {"error":{"code","message"}}
// whose codes come from the public jim error taxonomy (jim.ErrorCode).
// The original unversioned routes remain as aliases of the /v1
// handlers; they answer identically but carry a Deprecation header and
// a Link to their successor. See API.md for the endpoint reference —
// docs_test.go holds that document and the route table (Routes) to
// exact agreement.
//
// # Layering
//
// All inference behavior — proposal routing around skipped classes,
// conflict handling, arrival parsing under the creation-time typing —
// lives in jim.Session; this package is only routing, locks, and JSON
// codecs over it. Sessions live in a sharded in-memory table; each
// session carries its own RWMutex so read endpoints (/next, /topk,
// /result, summaries) run concurrently and a slow request on one
// session never blocks another.
//
// # Lifecycle
//
// Idle sessions are evicted after a configurable TTL, a session cap
// rejects overload with 429, and GET /v1/stats reports session counts,
// label throughput, per-endpoint latency, and store health.
//
// # Durability
//
// With a durable store configured (Config.Store, internal/store), the
// table is a cache and the store is the truth: every mutating request
// appends a WAL event after its in-memory apply and before its
// response, session state is periodically folded into snapshots (a
// size policy after Config.SnapshotEvery events, an age policy during
// sweeps), TTL eviction demotes idle sessions to disk instead of
// discarding them, and Restore rebuilds the table at startup by
// replaying snapshots and WAL suffixes through the same jim.Session
// methods the original requests used. OPERATIONS.md is the operator
// guide: flags, on-disk layout, recovery semantics, and what survives
// which kind of crash.
package server
