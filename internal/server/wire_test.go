package server_test

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/strategy"
	"repro/internal/wire"
	"repro/internal/workload"
)

// startWire serves srv's wire.Backend on a loopback listener and tears
// it down gracefully with the test.
func startWire(t *testing.T, srv *server.Server) (*wire.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := &wire.Server{Backend: srv}
	done := make(chan error, 1)
	go func() { done <- ws.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ws.Shutdown(ctx); err != nil {
			t.Errorf("wire shutdown: %v", err)
		}
		if err := <-done; err != wire.ErrServerClosed {
			t.Errorf("wire Serve returned %v", err)
		}
	})
	return ws, ln.Addr().String()
}

// wireLabel maps the /v1 label spelling to its wire encoding.
func wireLabel(s string) wire.Label {
	switch s {
	case "+":
		return wire.Positive
	case "-":
		return wire.Negative
	}
	return wire.Skip
}

// encodeRows renders a tuple batch in the HTTP/wire "rows" encoding.
func encodeRows(batch []relation.Tuple) [][]string {
	rows := make([][]string, len(batch))
	for bi, tu := range batch {
		row := make([]string, len(tu))
		for c, v := range tu {
			row[c] = relation.EncodeCell(v)
		}
		rows[bi] = row
	}
	return rows
}

// TestWireDifferentialFullProtocol is the transport-parity acceptance
// test for the binary protocol: one server, both listeners; for every
// shipped strategy, an HTTP session and a wire session created with the
// same seed are driven through the identical op sequence — next, label,
// periodic skips, topk rankings, streamed-in arrival batches — and must
// agree tuple-for-tuple at every step and on the final inferred query.
// Both sessions live in the same session table, so any divergence is a
// codec or dispatch bug, never an inference difference.
func TestWireDifferentialFullProtocol(t *testing.T) {
	for _, name := range strategy.Names() {
		t.Run(name, func(t *testing.T) {
			var (
				initial *relation.Relation
				batches [][]relation.Tuple
				goal    partition.P
			)
			if name == "optimal" {
				// Exponential strategy: tiny fixed instance, no streaming.
				initial, goal = workload.Travel(), workload.TravelQ2()
			} else {
				stream, err := workload.NewStream("synthetic", workload.StreamConfig{Batches: 3, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				initial, batches, goal = stream.Initial, stream.Batches, stream.Goal
			}
			picker, err := strategy.ByName(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			_, isKP := picker.(core.KPicker)

			// grown tracks the instance as batches drip in, so labels can
			// be computed for any proposed index on either transport.
			grown := relation.New(initial.Schema())
			initial.Each(func(i int, tu relation.Tuple) { grown.MustAppend(tu) })
			label := func(i int) string {
				if core.Selects(goal, grown.Tuple(i)) {
					return "+"
				}
				return "-"
			}

			srv := server.NewWith(server.Config{})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			_, addr := startWire(t, srv)
			c, err := wire.Dial(addr, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			var csv bytes.Buffer
			if err := relation.WriteCSV(&csv, initial); err != nil {
				t.Fatal(err)
			}
			var s summary
			doJSON(t, "POST", ts.URL+"/v1/sessions",
				map[string]any{"csv": csv.String(), "strategy": name, "seed": 7},
				http.StatusCreated, &s)
			base := ts.URL + "/v1/sessions/" + s.ID
			wid, err := c.Create(csv.String(), name, 7)
			if err != nil {
				t.Fatal(err)
			}
			if wid == s.ID {
				t.Fatalf("wire and HTTP sessions share id %q", wid)
			}

			nextBatch := 0
			questions := 0
			done := false
			for step := 0; ; step++ {
				if step > 4*grown.Len() {
					t.Fatal("protocol did not converge")
				}
				// Drip arrival batches into both transports.
				if nextBatch < len(batches) && step%4 == 3 {
					batch := batches[nextBatch]
					rows := encodeRows(batch)
					var ar appendResp
					doJSON(t, "POST", base+"/tuples", map[string]any{"rows": rows}, http.StatusOK, &ar)
					war, err := c.Append(wid, rows)
					if err != nil {
						t.Fatalf("step %d: wire append: %v", step, err)
					}
					if war.Appended != ar.Appended || war.NewlyImplied != len(ar.NewlyImplied) ||
						war.Informative != ar.Informative || war.Done != ar.Done {
						t.Fatalf("step %d: wire append %+v, HTTP %+v", step, war, ar)
					}
					for _, tu := range batch {
						grown.MustAppend(tu)
					}
					done = ar.Done
					nextBatch++
					continue
				}
				// Compare a ranked batch every few steps (KPickers only):
				// GET /topk against a k>1 step frame with no answers.
				if step%5 == 4 {
					if isKP && !done {
						var out struct {
							Tuples []struct {
								Index int `json:"index"`
							} `json:"tuples"`
						}
						doJSON(t, "GET", base+"/topk?k=3", nil, http.StatusOK, &out)
						res, err := c.Step(wid, nil, 3)
						if err != nil {
							t.Fatalf("step %d: wire topk: %v", step, err)
						}
						if len(res.Proposals) != len(out.Tuples) {
							t.Fatalf("step %d: topk %d on wire, %d over HTTP",
								step, len(res.Proposals), len(out.Tuples))
						}
						for k := range out.Tuples {
							if res.Proposals[k] != out.Tuples[k].Index {
								t.Fatalf("step %d: topk[%d] = %d on wire, %d over HTTP",
									step, k, res.Proposals[k], out.Tuples[k].Index)
							}
						}
					}
					continue
				}
				// GET /next against a k=1 step frame with no answers.
				var n next
				doJSON(t, "GET", base+"/next", nil, http.StatusOK, &n)
				res, err := c.Step(wid, nil, 1)
				if err != nil {
					t.Fatalf("step %d: wire next: %v", step, err)
				}
				if n.Done != (len(res.Proposals) == 0 && res.Done) {
					t.Fatalf("step %d: done=%v over HTTP, wire proposals=%v done=%v",
						step, n.Done, res.Proposals, res.Done)
				}
				if n.Done {
					done = true
					if nextBatch < len(batches) {
						continue // converged early; arrivals still pending
					}
					break
				}
				if len(res.Proposals) != 1 || res.Proposals[0] != n.Tuple.Index {
					t.Fatalf("step %d: HTTP proposed tuple %d, wire proposed %v",
						step, n.Tuple.Index, res.Proposals)
				}
				// POST /label against a k=0 step frame carrying the answer —
				// skip every 7th question on both sides, label otherwise.
				lab := label(n.Tuple.Index)
				if questions%7 == 6 {
					lab = "skip"
				}
				var lr labelResp
				doJSON(t, "POST", base+"/label",
					map[string]any{"index": n.Tuple.Index, "label": lab}, http.StatusOK, &lr)
				ans := []wire.Answer{{Index: n.Tuple.Index, Label: wireLabel(lab)}}
				wres, err := c.Step(wid, ans, 0)
				if err != nil {
					t.Fatalf("step %d: wire label: %v", step, err)
				}
				if len(wres.Applied) != 1 || len(wres.Proposals) != 0 {
					t.Fatalf("step %d: k=0 step returned %+v", step, wres)
				}
				if wres.Applied[0].NewlyImplied != len(lr.NewlyImplied) ||
					wres.Applied[0].Informative != lr.Informative || wres.Done != lr.Done {
					t.Fatalf("step %d: wire label %+v done=%v, HTTP %+v", step, wres.Applied[0], wres.Done, lr)
				}
				done = lr.Done
				questions++
			}

			var hres struct {
				Done      bool   `json:"done"`
				Predicate string `json:"predicate"`
				SQL       string `json:"sql"`
			}
			doJSON(t, "GET", base+"/result", nil, http.StatusOK, &hres)
			wresult, err := c.Result(wid)
			if err != nil {
				t.Fatal(err)
			}
			if !wresult.Done || !hres.Done {
				t.Errorf("done: wire=%v HTTP=%v", wresult.Done, hres.Done)
			}
			if wresult.Predicate != hres.Predicate {
				t.Errorf("M_P on wire = %s, over HTTP = %s", wresult.Predicate, hres.Predicate)
			}
			if wresult.SQL != hres.SQL {
				t.Errorf("SQL on wire = %q, over HTTP = %q", wresult.SQL, hres.SQL)
			}
			// Both transports address the same session table: the wire
			// client can delete the HTTP-created session, and the HTTP
			// surface sees both gone.
			if err := c.Delete(wid); err != nil {
				t.Fatal(err)
			}
			if err := c.Delete(s.ID); err != nil {
				t.Fatal(err)
			}
			wantError(t, "GET", base, nil, http.StatusNotFound, "not_found")
		})
	}
}

// TestWireFusedStepMatchesHTTPStep pins the fused frame against the
// fused HTTP call: a wire step carrying an answer plus k=1 (or k=3)
// must behave exactly like POST /step with the same body — the wire
// protocol's one-frame dialogue turn is the same atomic apply+propose,
// just without the JSON.
func TestWireFusedStepMatchesHTTPStep(t *testing.T) {
	rel, goal := workload.Travel(), workload.TravelQ2()
	var csv bytes.Buffer
	if err := relation.WriteCSV(&csv, rel); err != nil {
		t.Fatal(err)
	}
	label := func(i int) string {
		if core.Selects(goal, rel.Tuple(i)) {
			return "+"
		}
		return "-"
	}

	srv := server.NewWith(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, addr := startWire(t, srv)
	c, err := wire.Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var s summary
	doJSON(t, "POST", ts.URL+"/v1/sessions",
		map[string]any{"csv": csv.String(), "strategy": "lookahead-maxmin", "seed": 3},
		http.StatusCreated, &s)
	stepURL := ts.URL + "/v1/sessions/" + s.ID + "/step"
	wid, err := c.Create(csv.String(), "lookahead-maxmin", 3)
	if err != nil {
		t.Fatal(err)
	}

	// Propose-only opener on both.
	var hr stepResp
	doJSON(t, "POST", stepURL, map[string]any{}, http.StatusOK, &hr)
	wr, err := c.Step(wid, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	questions := 0
	for !hr.Done {
		if questions > rel.Len() {
			t.Fatal("dialogue did not converge")
		}
		if hr.Tuple == nil || len(wr.Proposals) != 1 || wr.Proposals[0] != hr.Tuple.Index {
			t.Fatalf("q%d: HTTP proposed %+v, wire %v", questions, hr.Tuple, wr.Proposals)
		}
		idx := hr.Tuple.Index
		lab := label(idx)
		if questions%5 == 4 {
			lab = "skip"
		}
		k := 1
		if questions%3 == 2 {
			k = 3 // fused answer + ranked batch
		}
		var hn stepResp
		doJSON(t, "POST", stepURL,
			map[string]any{"index": idx, "label": lab, "k": k}, http.StatusOK, &hn)
		wn, err := c.Step(wid, []wire.Answer{{Index: idx, Label: wireLabel(lab)}}, k)
		if err != nil {
			t.Fatalf("q%d: wire fused step: %v", questions, err)
		}
		if hn.Applied == nil || len(wn.Applied) != 1 {
			t.Fatalf("q%d: applied missing: HTTP %+v, wire %+v", questions, hn.Applied, wn.Applied)
		}
		if wn.Applied[0].NewlyImplied != len(hn.Applied.NewlyImplied) ||
			wn.Applied[0].Informative != hn.Applied.Informative {
			t.Fatalf("q%d: applied %+v on wire, %+v over HTTP", questions, wn.Applied[0], *hn.Applied)
		}
		if k > 1 {
			if len(wn.Proposals) != len(hn.Tuples) {
				t.Fatalf("q%d: fused topk %d on wire, %d over HTTP", questions, len(wn.Proposals), len(hn.Tuples))
			}
			for i := range hn.Tuples {
				if wn.Proposals[i] != hn.Tuples[i].Index {
					t.Fatalf("q%d: fused topk[%d] = %d on wire, %d over HTTP",
						questions, i, wn.Proposals[i], hn.Tuples[i].Index)
				}
			}
			// Re-propose the single routed next on both so the loop can
			// keep feeding answers after a ranked-batch turn.
			doJSON(t, "POST", stepURL, map[string]any{}, http.StatusOK, &hn)
			wn, err = c.Step(wid, nil, 1)
			if err != nil {
				t.Fatal(err)
			}
		}
		if wn.Done != hn.Done {
			t.Fatalf("q%d: done=%v on wire, %v over HTTP", questions, wn.Done, hn.Done)
		}
		hr, wr = hn, wn
		questions++
	}
	if len(wr.Proposals) != 0 || !wr.Done {
		t.Fatalf("wire not converged with HTTP: %+v", wr)
	}
	wres, err := c.Result(wid)
	if err != nil {
		t.Fatal(err)
	}
	var hres struct {
		Predicate string `json:"predicate"`
	}
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/result", nil, http.StatusOK, &hres)
	if wres.Predicate != hres.Predicate {
		t.Errorf("M_P on wire = %s, over HTTP = %s", wres.Predicate, hres.Predicate)
	}
}

// TestWireCrashRecovery drives a disk-backed session entirely over the
// wire protocol, kills the server without any graceful snapshot, and
// reopens the data directory: the recovered session must continue in
// lockstep with an uninterrupted memory-backed control session — same
// proposals from the crash point to convergence, same final query. The
// wire transport must add framing, not durability semantics: every
// acknowledged frame is already in the WAL.
func TestWireCrashRecovery(t *testing.T) {
	stream, err := workload.NewStream("synthetic", workload.StreamConfig{Batches: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	initial, batches, goal := stream.Initial, stream.Batches, stream.Goal
	var csv bytes.Buffer
	if err := relation.WriteCSV(&csv, initial); err != nil {
		t.Fatal(err)
	}
	grown := relation.New(initial.Schema())
	initial.Each(func(i int, tu relation.Tuple) { grown.MustAppend(tu) })
	label := func(i int) string {
		if core.Selects(goal, grown.Tuple(i)) {
			return "+"
		}
		return "-"
	}

	// Control: memory-backed, never interrupted, also driven over wire.
	ctrlSrv := server.NewWith(server.Config{})
	_, ctrlAddr := startWire(t, ctrlSrv)
	ctrl, err := wire.Dial(ctrlAddr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrlID, err := ctrl.Create(csv.String(), "lookahead-maxmin", 7)
	if err != nil {
		t.Fatal(err)
	}

	// Primary: disk-backed with an aggressive snapshot cadence, so the
	// crash lands on a snapshot + WAL-suffix mix.
	dir := t.TempDir()
	cfg, ds := diskConfig(t, dir)
	srv := server.NewWith(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := &wire.Server{Backend: srv}
	wsDone := make(chan error, 1)
	go func() { wsDone <- ws.Serve(ln) }()
	c, err := wire.Dial(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Create(csv.String(), "lookahead-maxmin", 7)
	if err != nil {
		t.Fatal(err)
	}

	nextBatch := 0
	questions := 0
	appended := false
	// drive advances both sessions in lockstep until crashAt questions
	// (negative: to convergence), comparing every proposal.
	drive := func(c *wire.Client, crashAt int) bool {
		for step := 0; ; step++ {
			if step > 6*grown.Len() {
				t.Fatal("dialogue did not converge")
			}
			if crashAt >= 0 && questions >= crashAt {
				return false
			}
			if nextBatch < len(batches) && step%4 == 3 {
				batch := batches[nextBatch]
				rows := encodeRows(batch)
				pr, err := c.Append(id, rows)
				if err != nil {
					t.Fatalf("step %d: primary append: %v", step, err)
				}
				cr, err := ctrl.Append(ctrlID, rows)
				if err != nil {
					t.Fatalf("step %d: control append: %v", step, err)
				}
				if pr != cr {
					t.Fatalf("step %d: append %+v on primary, %+v on control", step, pr, cr)
				}
				for _, tu := range batch {
					grown.MustAppend(tu)
				}
				nextBatch++
				appended = true
				continue
			}
			pres, err := c.Step(id, nil, 1)
			if err != nil {
				t.Fatalf("step %d: primary next: %v", step, err)
			}
			pIdx, pOK := 0, len(pres.Proposals) == 1
			if pOK {
				pIdx = pres.Proposals[0]
			}
			pDone := pres.Done
			cres, err := ctrl.Step(ctrlID, nil, 1)
			if err != nil {
				t.Fatalf("step %d: control next: %v", step, err)
			}
			cOK := len(cres.Proposals) == 1
			if pOK != cOK || (pOK && pIdx != cres.Proposals[0]) || pDone != cres.Done {
				t.Fatalf("step %d (q%d): primary proposed %v done=%v, control %v done=%v",
					step, questions, pres.Proposals, pDone, cres.Proposals, cres.Done)
			}
			if !pOK {
				if pDone {
					if nextBatch < len(batches) {
						continue
					}
					return true
				}
				continue
			}
			// Skip every 5th question so the skip set is live at the
			// crash point — recovery must restore routing, not just labels.
			lab := label(pIdx)
			if questions%5 == 2 {
				lab = "skip"
			}
			ans := []wire.Answer{{Index: pIdx, Label: wireLabel(lab)}}
			pl, err := c.Step(id, ans, 0)
			if err != nil {
				t.Fatalf("step %d: primary label: %v", step, err)
			}
			pApplied, pLDone := pl.Applied[0], pl.Done
			cl, err := ctrl.Step(ctrlID, ans, 0)
			if err != nil {
				t.Fatalf("step %d: control label: %v", step, err)
			}
			if pApplied != cl.Applied[0] || pLDone != cl.Done {
				t.Fatalf("step %d: label %+v done=%v on primary, %+v done=%v on control",
					step, pApplied, pLDone, cl.Applied[0], cl.Done)
			}
			questions++
		}
	}

	// Phase 1: run past the first skip (q2) and the first arrival batch,
	// then crash with both in play.
	converged := drive(c, 5)
	if converged {
		t.Fatal("dialogue converged before the crash point")
	}
	if !appended {
		t.Fatal("crash point reached before any arrival batch landed")
	}

	// SIGKILL-style: drop the client, stop serving, close the store —
	// no SnapshotAll, no sweep. Only per-request WAL writes survive.
	c.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ws.Shutdown(shutCtx); err != nil {
		t.Fatalf("wire shutdown: %v", err)
	}
	if err := <-wsDone; err != wire.ErrServerClosed {
		t.Fatalf("wire Serve returned %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the directory, restore, and serve the wire protocol again.
	cfg2, ds2 := diskConfig(t, dir)
	defer ds2.Close()
	srv2 := server.NewWith(cfg2)
	restored, err := srv2.Restore()
	if err != nil || restored != 1 {
		t.Fatalf("restore = %d, %v; want 1 session", restored, err)
	}
	_, addr2 := startWire(t, srv2)
	c2, err := wire.Dial(addr2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// The recovered session's running result matches the control's.
	pr, err := c2.Result(id)
	if err != nil {
		t.Fatalf("result over recovered wire: %v", err)
	}
	cr, err := ctrl.Result(ctrlID)
	if err != nil {
		t.Fatal(err)
	}
	if pr != cr {
		t.Fatalf("recovered result %+v, control %+v", pr, cr)
	}

	// Phase 2: finish the dialogue against the recovered server, still
	// in lockstep — every proposal from the crash point on must match.
	drive(c2, -1)
	pr, err = c2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	cr, err = ctrl.Result(ctrlID)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Done || pr != cr {
		t.Fatalf("final recovered result %+v, control %+v", pr, cr)
	}
}
