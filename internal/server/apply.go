package server

import (
	"errors"
	"fmt"

	jim "repro"
)

// This file is the transport-agnostic session-apply layer: every
// mutation and proposal the service performs, expressed as methods
// returning typed errors from the jim taxonomy. The /v1 HTTP handlers
// and the binary wire protocol (internal/wire) are both thin wrappers
// over these — one code path, two encodings — so the transports cannot
// drift: the differential tests hold them tuple-for-tuple equal, and
// this layer is why that holds by construction for everything below
// the codec.

// lookup resolves a session id and touches its idle clock. The error
// is CodeNotFound.
func (s *Server) lookup(id string) (*liveSession, error) {
	ls, ok := s.sessions.get(id)
	if !ok {
		return nil, &jim.Error{Code: jim.CodeNotFound, Message: fmt.Sprintf("no session %q", id)}
	}
	ls.touch(s.now())
	return ls, nil
}

// register inserts a fresh session under a new id, enforcing the cap.
// When at the cap, expired sessions are swept first so a full table of
// abandoned sessions does not lock out live users. With a durable
// store, the session's initial snapshot is written before the id is
// returned — a created session is a recoverable session. The summary
// is captured before the session is published: ids are predictable, so
// a concurrent writer could mutate it immediately.
func (s *Server) register(ls *liveSession) (string, sessionSummary, error) {
	ls.touch(s.now())
	// allocID skips ids the cluster ring assigns to other nodes, so
	// every node draws from a disjoint id space and a create is always
	// served locally (single-node: first id wins immediately).
	id := s.allocID()
	summary := summarize(id, ls)
	err := s.sessions.put(id, ls, s.cfg.MaxSessions)
	if errors.Is(err, errSessionCap) && s.sweepQuick() > 0 {
		err = s.sessions.put(id, ls, s.cfg.MaxSessions)
	}
	if err != nil {
		s.sessions.rejected.Add(1)
		return "", sessionSummary{}, &jim.Error{
			Code:    jim.CodeTooManySessions,
			Message: fmt.Sprintf("%v (%d active, max %d)", err, s.sessions.active.Load(), s.cfg.MaxSessions),
		}
	}
	if s.durable || s.shipperFor() != nil {
		if err := s.snapshotSession(id, ls); err != nil {
			// A session the store cannot hold must not exist: undo the
			// insert (rollback, so a failed create never reads as
			// created+deleted churn in /stats), and purge — ids are
			// predictable, so a concurrent request may already have
			// logged an event into what would otherwise survive as a
			// WAL-only remnant poisoning every future Restore.
			s.sessions.rollback(id)
			_ = s.purge(id, ls)
			s.persist.errors.Add(1)
			return "", sessionSummary{}, &jim.Error{
				Code:    jim.CodeInternal,
				Message: fmt.Sprintf("persisting session: %v", err),
			}
		}
	}
	return id, summary, nil
}

// applyAnswer applies one answer or skip to the session and persists
// its event — the shared apply step of POST /label, POST /step, and
// the wire step op. It returns the newly implied tuple indices (nil
// for a skip). The caller holds the session's write lock.
func (s *Server) applyAnswer(id string, ls *liveSession, index int, label string) ([]int, error) {
	var l jim.Label
	switch label {
	case "+", "yes", "y":
		l = jim.Positive
	case "-", "no", "n":
		l = jim.Negative
	case "skip", "s", "?":
		if err := ls.sess.Skip(index); err != nil {
			return nil, err
		}
		if err := s.persistEvent(id, ls, skipEvent(index)); err != nil {
			return nil, err
		}
		return nil, nil
	default:
		return nil, &jim.Error{
			Code:    jim.CodeBadInput,
			Message: fmt.Sprintf("unknown label %q (want +, -, or skip)", label),
		}
	}
	out, err := ls.sess.Answer(index, l)
	if err != nil {
		return nil, err
	}
	if err := s.persistEvent(id, ls, labelEvent(index, l)); err != nil {
		return nil, err
	}
	s.metrics.labels.Add(1)
	return out.NewlyImplied, nil
}

// proposeOne picks the next tuple to ask about, routing around skipped
// classes. ok=false means the dialogue is over (or everything left is
// deferred past the re-offer budget). The caller holds ls.mu in either
// mode; pickMu is taken here.
//
// A proposal that starts a re-offer round mutates the skip set — the
// one state change a read path makes — and must reach the WAL, or
// replayed skips would accumulate onto a set the live session had
// cleared and recovery would propose different tuples. The clear and
// its event are logged under pickMu as one unit, so a concurrent
// snapshot (which holds pickMu across capture and sequence stamping)
// sees either neither or both; skip events themselves take the write
// lock, which excludes read-locked callers.
func (s *Server) proposeOne(id string, ls *liveSession) (int, bool, error) {
	ls.pickMu.Lock()
	defer ls.pickMu.Unlock()
	clearsBefore := ls.sess.Core().SkipClears()
	i, ok := ls.sess.Propose()
	if ls.sess.Core().SkipClears() != clearsBefore {
		if err := s.persistEvent(id, ls, clearEvent()); err != nil {
			return 0, false, err
		}
	}
	return i, ok, nil
}

// rankK returns the k most informative tuple indices from the ranking
// path (unlike proposeOne, skips are not routed around). The caller
// holds ls.mu in either mode; pickMu is taken here.
func (s *Server) rankK(ls *liveSession, k int) ([]int, error) {
	ls.pickMu.Lock()
	defer ls.pickMu.Unlock()
	return ls.sess.TopK(k)
}

// applyAppend streams parsed arrival tuples into the session and
// persists the batch. The caller holds the session's write lock and
// has already validated len(tuples) > 0.
func (s *Server) applyAppend(id string, ls *liveSession, tuples []jim.Tuple) ([]int, error) {
	newly, err := ls.sess.Append(tuples)
	if err != nil {
		return nil, err
	}
	if err := s.persistEvent(id, ls, appendEvent(tuples)); err != nil {
		return nil, err
	}
	s.metrics.appends.Add(1)
	s.metrics.tuplesAppended.Add(int64(len(tuples)))
	return newly, nil
}

// deleteSession drops a session and discards its durable copy. The
// error is CodeNotFound when the id names nothing reachable, or
// CodeInternal when the durable discard failed (an orphan that would
// resurrect on restart — reported, not swallowed).
func (s *Server) deleteSession(id string) error {
	ls, ok := s.sessions.get(id)
	if !ok || !s.sessions.delete(id) {
		// Not in RAM — but with a durable store the id may name a
		// TTL-demoted session: mid-demotion (fence it so the pending
		// demotion snapshot cannot re-create what we are about to
		// discard) or fully parked on disk. DELETE means gone either
		// way; garbage ids (not the server's own shape) have nothing
		// to purge. The result stays not_found — the session was
		// already unreachable — and purge failures surface via
		// persist_errors.
		if s.durable || s.shipperFor() != nil {
			switch {
			case ok:
				// get saw it but a sweep raced the delete; we still
				// hold the liveSession, so fence it — an async
				// size-policy snapshot may be in flight.
				_ = s.purge(id, ls)
			default:
				if v, mid := s.demoting.Load(id); mid {
					_ = s.purge(id, v.(*liveSession))
				} else if _, serverID := numericID(id); serverID {
					_ = s.purge(id, nil)
				}
			}
		}
		return &jim.Error{Code: jim.CodeNotFound, Message: fmt.Sprintf("no session %q", id)}
	}
	// An explicit delete discards the durable copy too — unlike
	// eviction, which demotes the session to disk.
	if err := s.purge(id, ls); err != nil {
		return &jim.Error{Code: jim.CodeInternal, Message: fmt.Sprintf("discarding persisted session: %v", err)}
	}
	return nil
}
