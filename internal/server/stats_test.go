package server_test

import (
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

type statsView struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Sessions      struct {
		Active   int64 `json:"active"`
		Created  int64 `json:"created"`
		Deleted  int64 `json:"deleted"`
		Evicted  int64 `json:"evicted"`
		Rejected int64 `json:"rejected"`
	} `json:"sessions"`
	Labels struct {
		Total     int64   `json:"total"`
		PerSecond float64 `json:"per_second"`
	} `json:"labels"`
	Endpoints map[string]struct {
		Count  int64   `json:"count"`
		Errors int64   `json:"errors"`
		P50MS  float64 `json:"p50_ms"`
		P95MS  float64 `json:"p95_ms"`
		P99MS  float64 `json:"p99_ms"`
	} `json:"endpoints"`
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "lookahead-maxmin")
	createSession(t, ts, "random")

	// Drive one session to convergence to accumulate label traffic.
	rel := workload.Travel()
	goal := workload.TravelQ2()
	labels := 0
	for {
		var n next
		doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/next", nil, http.StatusOK, &n)
		if n.Done {
			break
		}
		label := "-"
		if core.Selects(goal, rel.Tuple(n.Tuple.Index)) {
			label = "+"
		}
		var lr labelResp
		doJSON(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
			map[string]any{"index": n.Tuple.Index, "label": label}, http.StatusOK, &lr)
		labels++
	}
	// One bad request for the error counter.
	wantError(t, "GET", ts.URL+"/v1/sessions/nope", nil, http.StatusNotFound, "not_found")

	var st statsView
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &st)

	if st.Sessions.Active != 2 || st.Sessions.Created != 2 {
		t.Errorf("sessions = %+v", st.Sessions)
	}
	if st.Labels.Total != int64(labels) {
		t.Errorf("labels.total = %d, want %d", st.Labels.Total, labels)
	}
	label := st.Endpoints["POST /v1/sessions/{id}/label"]
	if label.Count != int64(labels) {
		t.Errorf("label endpoint count = %d, want %d", label.Count, labels)
	}
	if label.P50MS <= 0 || label.P95MS < label.P50MS || label.P99MS < label.P95MS {
		t.Errorf("label latency quantiles not monotone positive: %+v", label)
	}
	get := st.Endpoints["GET /v1/sessions/{id}"]
	if get.Errors != 1 {
		t.Errorf("summary endpoint errors = %d, want 1 (the 404)", get.Errors)
	}
	if create := st.Endpoints["POST /v1/sessions"]; create.Count != 2 {
		t.Errorf("create endpoint count = %d, want 2", create.Count)
	}
}
