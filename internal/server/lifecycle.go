package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// numShards spreads sessions over independent maps so that session
// creation, lookup, and eviction on one shard never contend with
// traffic on another. Power of two; small enough that a full sweep
// stays cheap.
const numShards = 16

// shard is one slice of the session table. Its lock guards only map
// membership — per-session state is guarded by liveSession.mu, so a
// slow request on one session never blocks lookups of its neighbors.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*liveSession
}

// table is the sharded in-RAM session table plus the counters the cap
// and the /stats endpoint need. Counters are atomics so hot paths
// never take a global lock. Durability is not its job: the configured
// store.Store persists sessions; the table only serves requests.
type table struct {
	shards  [numShards]shard
	active  atomic.Int64 // current session count, maintained across shards
	created atomic.Int64
	evicted atomic.Int64
	deleted atomic.Int64
	// rejected counts creates refused by the session cap.
	rejected atomic.Int64
	// restored counts sessions rebuilt from the durable store at
	// startup; they are not "created" (the client did that once,
	// possibly in a previous process).
	restored atomic.Int64
}

func newTable() *table {
	tb := &table{}
	for i := range tb.shards {
		tb.shards[i].sessions = make(map[string]*liveSession)
	}
	return tb
}

func (tb *table) shardFor(id string) *shard {
	// Inline FNV-1a: a hash.Hash32 would heap-allocate per request.
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &tb.shards[h&(numShards-1)]
}

// put inserts a new session, enforcing the cap (maxSessions <= 0 means
// unlimited). The active counter is reserved before insertion so
// concurrent creates cannot overshoot the cap. The caller counts
// rejections: a cap bounce here may still succeed after a sweep.
func (tb *table) put(id string, ls *liveSession, maxSessions int) error {
	if maxSessions > 0 && tb.active.Add(1) > int64(maxSessions) {
		tb.active.Add(-1)
		return errSessionCap
	}
	if maxSessions <= 0 {
		tb.active.Add(1)
	}
	tb.created.Add(1)
	sh := tb.shardFor(id)
	sh.mu.Lock()
	sh.sessions[id] = ls
	sh.mu.Unlock()
	return nil
}

// putRestored inserts a session rebuilt from the durable store. It
// bypasses the cap — these sessions were admitted once, before the
// restart — and counts as restored, not created.
func (tb *table) putRestored(id string, ls *liveSession) {
	tb.active.Add(1)
	tb.restored.Add(1)
	sh := tb.shardFor(id)
	sh.mu.Lock()
	sh.sessions[id] = ls
	sh.mu.Unlock()
}

// rollback removes a session whose create failed after put published
// it: from the client's view the create never happened, so neither
// the created nor the deleted counter may keep it.
func (tb *table) rollback(id string) {
	sh := tb.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	delete(sh.sessions, id)
	sh.mu.Unlock()
	if ok {
		tb.active.Add(-1)
		tb.created.Add(-1)
	}
}

func (tb *table) get(id string) (*liveSession, bool) {
	sh := tb.shardFor(id)
	sh.mu.RLock()
	ls, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return ls, ok
}

func (tb *table) delete(id string) bool {
	sh := tb.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	delete(sh.sessions, id)
	sh.mu.Unlock()
	if ok {
		tb.active.Add(-1)
		tb.deleted.Add(1)
	}
	return ok
}

// demote removes a session handed off to another node during a rejoin
// or rebalance: the active count drops but nothing is counted
// deleted — the session lives on, under a new owner.
func (tb *table) demote(id string) bool {
	sh := tb.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	delete(sh.sessions, id)
	sh.mu.Unlock()
	if ok {
		tb.active.Add(-1)
	}
	return ok
}

// forEach visits a consistent snapshot of each shard in turn. The
// callback runs outside the shard lock so it may lock the session.
func (tb *table) forEach(f func(id string, ls *liveSession)) {
	for i := range tb.shards {
		sh := &tb.shards[i]
		sh.mu.RLock()
		ids := make([]string, 0, len(sh.sessions))
		lss := make([]*liveSession, 0, len(sh.sessions))
		for id, ls := range sh.sessions {
			ids = append(ids, id)
			lss = append(lss, ls)
		}
		sh.mu.RUnlock()
		for j, id := range ids {
			f(id, lss[j])
		}
	}
}

var errSessionCap = fmt.Errorf("server: session limit reached")

// touch records an access so the idle-TTL sweeper keeps the session.
func (ls *liveSession) touch(now time.Time) {
	ls.lastAccess.Store(now.UnixNano())
}

// Sweep evicts every session idle for longer than the configured TTL
// and returns how many were removed. It is a no-op when IdleTTL is
// zero. The server calls it opportunistically on session creation and
// from the janitor started by StartJanitor; tests drive it directly
// with an injected clock.
//
// With a durable store configured, eviction is a demotion, not a
// deletion: each victim's state is folded into a final snapshot before
// it leaves RAM, so an idle session survives the restart that follows
// and its WAL is already compact when it reloads. Victims are
// registered in Server.demoting for the duration, so a DELETE landing
// between table removal and the demotion snapshot can still fence the
// session instead of losing the race and watching it resurrect.
func (s *Server) Sweep() int { return s.sweep(true) }

// sweepQuick is the create path's cap-relief sweep: eviction without
// the per-victim demotion snapshots, so a client request that bounced
// off the session cap never stalls behind snapshot IO. Skipping the
// snapshot loses nothing — every victim's snapshot + WAL on disk is
// already complete, just less compact than a demotion snapshot would
// leave it.
func (s *Server) sweepQuick() int { return s.sweep(false) }

func (s *Server) sweep(withSnapshots bool) int {
	if s.cfg.IdleTTL <= 0 {
		return 0
	}
	type victim struct {
		id string
		ls *liveSession
	}
	var evict []victim
	deadline := s.now().Add(-s.cfg.IdleTTL).UnixNano()
	for i := range s.sessions.shards {
		sh := &s.sessions.shards[i]
		sh.mu.Lock()
		for id, ls := range sh.sessions {
			if ls.lastAccess.Load() <= deadline {
				if s.durable && withSnapshots {
					// Registered before the table entry disappears, so
					// there is no instant where the session is in
					// neither structure.
					s.demoting.Store(id, ls)
				}
				delete(sh.sessions, id)
				s.sessions.active.Add(-1)
				s.sessions.evicted.Add(1)
				evict = append(evict, victim{id, ls})
			}
		}
		sh.mu.Unlock()
	}
	// Demotion snapshots happen outside the shard locks: they take the
	// session lock and do IO. An evicted session is unreachable through
	// the table, so its final snapshot cannot race new writes; a
	// concurrent DELETE goes through the demoting registry and the
	// deleted fence.
	if s.durable && withSnapshots {
		for _, v := range evict {
			if v.ls.walEvents.Load() > 0 {
				if err := s.snapshotSession(v.id, v.ls); err != nil {
					s.persist.errors.Add(1)
				}
			}
			s.demoting.Delete(v.id)
		}
	}
	return len(evict)
}

// SnapshotAged enforces the age half of the snapshot policy: every
// session whose WAL has been accumulating for longer than
// Config.SnapshotMaxAge is folded into a fresh snapshot. It returns
// how many sessions were snapshotted. The janitor calls it on its
// tick; it is deliberately NOT part of Sweep, which runs inline on the
// create path when the session cap is hit — a client request must not
// stall behind a fleet-wide re-snapshot that is pure background
// hygiene.
func (s *Server) SnapshotAged() int {
	if !s.durable || s.cfg.SnapshotMaxAge <= 0 {
		return 0
	}
	deadline := s.now().Add(-s.cfg.SnapshotMaxAge).UnixNano()
	type victim struct {
		id string
		ls *liveSession
	}
	var stale []victim
	s.sessions.forEach(func(id string, ls *liveSession) {
		if ls.walEvents.Load() > 0 && ls.lastSnapshot.Load() <= deadline {
			stale = append(stale, victim{id, ls})
		}
	})
	n := 0
	for _, v := range stale {
		if err := s.snapshotSession(v.id, v.ls); err != nil {
			s.persist.errors.Add(1)
			continue
		}
		n++
	}
	return n
}

// StartJanitor sweeps idle sessions and ages WAL snapshots every
// interval until the returned stop function is called. cmd/jimserver
// runs one; tests and embedded users may prefer calling Sweep and
// SnapshotAged directly.
func (s *Server) StartJanitor(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.Sweep()
				s.SnapshotAged()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
