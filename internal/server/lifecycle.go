package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// numShards spreads sessions over independent maps so that session
// creation, lookup, and eviction on one shard never contend with
// traffic on another. Power of two; small enough that a full sweep
// stays cheap.
const numShards = 16

// shard is one slice of the session table. Its lock guards only map
// membership — per-session state is guarded by liveSession.mu, so a
// slow request on one session never blocks lookups of its neighbors.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*liveSession
}

// store is the sharded session table plus the counters the cap and the
// /stats endpoint need. Counters are atomics so hot paths never take a
// global lock.
type store struct {
	shards  [numShards]shard
	active  atomic.Int64 // current session count, maintained across shards
	created atomic.Int64
	evicted atomic.Int64
	deleted atomic.Int64
	// rejected counts creates refused by the session cap.
	rejected atomic.Int64
}

func newStore() *store {
	st := &store{}
	for i := range st.shards {
		st.shards[i].sessions = make(map[string]*liveSession)
	}
	return st
}

func (st *store) shardFor(id string) *shard {
	// Inline FNV-1a: a hash.Hash32 would heap-allocate per request.
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &st.shards[h&(numShards-1)]
}

// put inserts a new session, enforcing the cap (maxSessions <= 0 means
// unlimited). The active counter is reserved before insertion so
// concurrent creates cannot overshoot the cap. The caller counts
// rejections: a cap bounce here may still succeed after a sweep.
func (st *store) put(id string, ls *liveSession, maxSessions int) error {
	if maxSessions > 0 && st.active.Add(1) > int64(maxSessions) {
		st.active.Add(-1)
		return errSessionCap
	}
	if maxSessions <= 0 {
		st.active.Add(1)
	}
	st.created.Add(1)
	sh := st.shardFor(id)
	sh.mu.Lock()
	sh.sessions[id] = ls
	sh.mu.Unlock()
	return nil
}

func (st *store) get(id string) (*liveSession, bool) {
	sh := st.shardFor(id)
	sh.mu.RLock()
	ls, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return ls, ok
}

func (st *store) delete(id string) bool {
	sh := st.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	delete(sh.sessions, id)
	sh.mu.Unlock()
	if ok {
		st.active.Add(-1)
		st.deleted.Add(1)
	}
	return ok
}

// forEach visits a consistent snapshot of each shard in turn. The
// callback runs outside the shard lock so it may lock the session.
func (st *store) forEach(f func(id string, ls *liveSession)) {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		ids := make([]string, 0, len(sh.sessions))
		lss := make([]*liveSession, 0, len(sh.sessions))
		for id, ls := range sh.sessions {
			ids = append(ids, id)
			lss = append(lss, ls)
		}
		sh.mu.RUnlock()
		for j, id := range ids {
			f(id, lss[j])
		}
	}
}

var errSessionCap = fmt.Errorf("server: session limit reached")

// touch records an access so the idle-TTL sweeper keeps the session.
func (ls *liveSession) touch(now time.Time) {
	ls.lastAccess.Store(now.UnixNano())
}

// Sweep evicts every session idle for longer than the configured TTL
// and returns how many were removed. It is a no-op when IdleTTL is
// zero. The server calls it opportunistically on session creation and
// from the janitor started by StartJanitor; tests drive it directly
// with an injected clock.
func (s *Server) Sweep() int {
	if s.cfg.IdleTTL <= 0 {
		return 0
	}
	deadline := s.now().Add(-s.cfg.IdleTTL).UnixNano()
	n := 0
	for i := range s.store.shards {
		sh := &s.store.shards[i]
		sh.mu.Lock()
		for id, ls := range sh.sessions {
			if ls.lastAccess.Load() <= deadline {
				delete(sh.sessions, id)
				s.store.active.Add(-1)
				s.store.evicted.Add(1)
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// StartJanitor sweeps idle sessions every interval until the returned
// stop function is called. cmd/jimserver runs one; tests and embedded
// users may prefer calling Sweep directly.
func (s *Server) StartJanitor(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.Sweep()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
