package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	jim "repro"
	"repro/internal/strategy"
)

// TestV1Pagination checks GET /v1/sessions pages: deterministic id
// order, a default and a maximum page size, and stable windows.
func TestV1Pagination(t *testing.T) {
	ts := newTestServer(t)
	const n = 5
	ids := make([]string, n)
	for i := range ids {
		ids[i] = createSession(t, ts, "").ID
	}

	var page listBody
	doJSON(t, "GET", ts.URL+"/v1/sessions?limit=2", nil, http.StatusOK, &page)
	if page.Total != n || page.Limit != 2 || page.Offset != 0 || len(page.Sessions) != 2 {
		t.Fatalf("first page = %+v", page)
	}
	if page.Sessions[0].ID != ids[0] || page.Sessions[1].ID != ids[1] {
		t.Errorf("first page ids = %s,%s want %s,%s",
			page.Sessions[0].ID, page.Sessions[1].ID, ids[0], ids[1])
	}

	doJSON(t, "GET", ts.URL+"/v1/sessions?limit=2&offset=4", nil, http.StatusOK, &page)
	if len(page.Sessions) != 1 || page.Sessions[0].ID != ids[4] {
		t.Errorf("last page = %+v", page)
	}

	// Offset past the end: empty page, never an error.
	doJSON(t, "GET", ts.URL+"/v1/sessions?offset=100", nil, http.StatusOK, &page)
	if len(page.Sessions) != 0 || page.Total != n {
		t.Errorf("beyond-end page = %+v", page)
	}

	// Default limit applies when none is named.
	doJSON(t, "GET", ts.URL+"/v1/sessions", nil, http.StatusOK, &page)
	if page.Limit != 50 {
		t.Errorf("default limit = %d, want 50", page.Limit)
	}

	// A limit beyond the cap clamps instead of failing.
	doJSON(t, "GET", ts.URL+"/v1/sessions?limit=99999", nil, http.StatusOK, &page)
	if page.Limit != 500 {
		t.Errorf("clamped limit = %d, want 500", page.Limit)
	}

	wantError(t, "GET", ts.URL+"/v1/sessions?limit=0", nil, http.StatusBadRequest, "bad_input")
	wantError(t, "GET", ts.URL+"/v1/sessions?limit=x", nil, http.StatusBadRequest, "bad_input")
	wantError(t, "GET", ts.URL+"/v1/sessions?offset=-1", nil, http.StatusBadRequest, "bad_input")
}

// TestV1Strategies checks the discovery endpoint lists the registry
// with the default marked.
func TestV1Strategies(t *testing.T) {
	ts := newTestServer(t)
	var resp struct {
		Strategies []struct {
			Name      string `json:"name"`
			Heuristic bool   `json:"heuristic"`
		} `json:"strategies"`
		Default string `json:"default"`
	}
	doJSON(t, "GET", ts.URL+"/v1/strategies", nil, http.StatusOK, &resp)
	if resp.Default != jim.DefaultStrategy {
		t.Errorf("default = %q", resp.Default)
	}
	names := map[string]bool{}
	for _, s := range resp.Strategies {
		names[s.Name] = true
		if wantHeuristic := s.Name != "optimal"; s.Heuristic != wantHeuristic {
			t.Errorf("strategy %s heuristic = %v", s.Name, s.Heuristic)
		}
	}
	for _, want := range strategy.Names() {
		if !names[want] {
			t.Errorf("strategy %q missing from discovery", want)
		}
	}
	// Every advertised strategy must be accepted by create.
	for _, s := range resp.Strategies {
		if s.Name == "optimal" {
			continue // exponential; exercised on tiny instances elsewhere
		}
		createSession(t, ts, s.Name)
	}
}

// TestLegacyAliases checks every pre-versioning route still answers
// with the same body as its /v1 successor plus the deprecation
// headers, and that /v1 routes carry no deprecation marker.
func TestLegacyAliases(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "lookahead-maxmin")

	get := func(url string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	paths := []string{
		"/sessions",
		"/sessions/" + s.ID,
		"/sessions/" + s.ID + "/next",
		"/sessions/" + s.ID + "/topk?k=2",
		"/sessions/" + s.ID + "/result",
		"/sessions/" + s.ID + "/export",
		"/sessions/zzz", // error envelope must alias too
		"/stats",
	}
	for _, p := range paths {
		legacy, legacyBody := get(ts.URL + p)
		v1, v1Body := get(ts.URL + "/v1" + p)
		if legacy.StatusCode != v1.StatusCode {
			t.Errorf("%s: legacy status %d, v1 %d", p, legacy.StatusCode, v1.StatusCode)
		}
		if p != "/stats" && legacyBody != v1Body {
			t.Errorf("%s: legacy body differs from v1:\n%s\nvs\n%s", p, legacyBody, v1Body)
		}
		if dep := legacy.Header.Get("Deprecation"); dep != "true" {
			t.Errorf("%s: legacy Deprecation header = %q, want \"true\"", p, dep)
		}
		wantLink := fmt.Sprintf("</v1%s>; rel=\"successor-version\"", strings.SplitN(p, "?", 2)[0])
		if link := legacy.Header.Get("Link"); link != wantLink {
			t.Errorf("%s: legacy Link = %q, want %q", p, link, wantLink)
		}
		if dep := v1.Header.Get("Deprecation"); dep != "" {
			t.Errorf("%s: /v1 route carries Deprecation header %q", p, dep)
		}
	}

	// Legacy writes answer identically too.
	var legacyLR, v1LR labelResp
	doJSON(t, "POST", ts.URL+"/sessions/"+s.ID+"/label",
		map[string]any{"index": 0, "label": "skip"}, http.StatusOK, &legacyLR)
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
		map[string]any{"index": 1, "label": "skip"}, http.StatusOK, &v1LR)
	if legacyLR.Informative != v1LR.Informative {
		t.Errorf("legacy label response %+v, v1 %+v", legacyLR, v1LR)
	}
	// Legacy create still works and carries the deprecation marker.
	data, _ := json.Marshal(map[string]any{"csv": travelCSV})
	resp, err := http.Post(ts.URL+"/sessions", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || resp.Header.Get("Deprecation") != "true" {
		t.Errorf("legacy create: status %d, Deprecation %q", resp.StatusCode, resp.Header.Get("Deprecation"))
	}
}

// TestErrorEnvelopeShape pins the wire shape of failures across
// endpoint families: every error is {"error":{"code","message"}} with
// a status derived from the code.
func TestErrorEnvelopeShape(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "")

	cases := []struct {
		method, path string
		body         any
		status       int
		code         string
	}{
		{"POST", "/v1/sessions", map[string]any{"csv": ""}, 400, "bad_input"},
		{"POST", "/v1/sessions", map[string]any{"csv": travelCSV, "strategy": "zzz"}, 400, "unknown_strategy"},
		{"GET", "/v1/sessions/none", nil, 404, "not_found"},
		{"POST", "/v1/sessions/" + s.ID + "/label", map[string]any{"index": -3, "label": "+"}, 400, "out_of_range"},
		{"POST", "/v1/sessions/" + s.ID + "/label", map[string]any{"index": 0, "label": "??"}, 400, "bad_input"},
		{"POST", "/v1/sessions/" + s.ID + "/tuples", map[string]any{"rows": [][]string{{"just", "two"}}}, 409, "schema_mismatch"},
		{"POST", "/v1/sessions/" + s.ID + "/tuples", map[string]any{}, 400, "bad_input"},
		{"POST", "/v1/sessions/" + s.ID + "/tuples",
			map[string]any{"csv": "x", "rows": [][]string{{"a"}}}, 400, "bad_input"},
	}
	for _, tc := range cases {
		e := wantError(t, tc.method, ts.URL+tc.path, tc.body, tc.status, tc.code)
		if e.Error.Message == "" {
			t.Errorf("%s %s: empty message", tc.method, tc.path)
		}
	}
}

// TestSkipAfterDone pins the session_done contract: once converged,
// skip is refused with 409/session_done while a consistent confirming
// label is still accepted (it pins an implied label down explicitly).
func TestSkipAfterDone(t *testing.T) {
	ts := newTestServer(t)
	var s growableSummary
	doJSON(t, "POST", ts.URL+"/v1/sessions",
		map[string]any{"csv": "a,b\n1,1\n"}, http.StatusCreated, &s)
	if !s.Done {
		t.Fatalf("single-tuple all-equal instance should converge at creation: %+v", s)
	}
	wantError(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
		map[string]any{"index": 0, "label": "skip"}, http.StatusConflict, "session_done")
	var lr labelResp
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
		map[string]any{"index": 0, "label": "+"}, http.StatusOK, &lr)
}
