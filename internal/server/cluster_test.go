package server_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	jim "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// clusterNode is one in-process cluster member: the server, its HTTP
// front end, and its replication listener.
type clusterNode struct {
	id     string
	srv    *server.Server
	ts     *httptest.Server
	repl   *cluster.ReplServer
	replLn net.Listener
	dead   bool
}

func (n *clusterNode) base() string { return n.ts.URL + "/v1" }

// kill is the loadtest-style SIGKILL: stop serving HTTP, tear down the
// replication listener, stop shipping. No drain, no snapshot-all.
func (n *clusterNode) kill() {
	if n.dead {
		return
	}
	n.dead = true
	n.ts.Close()
	n.repl.Close()
	n.srv.CloseCluster()
}

// startCluster brings up an in-process cluster of mem-store nodes:
// real HTTP listeners, real replication streams, shared peer table.
func startCluster(t *testing.T, ids ...string) map[string]*clusterNode {
	t.Helper()
	nodes := make(map[string]*clusterNode, len(ids))
	var peers []cluster.Node
	for _, id := range ids {
		srv := server.New()
		ts := httptest.NewServer(srv.Handler())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = &clusterNode{id: id, srv: srv, ts: ts, replLn: ln}
		peers = append(peers, cluster.Node{
			ID:   id,
			HTTP: strings.TrimPrefix(ts.URL, "http://"),
			Repl: ln.Addr().String(),
		})
	}
	for _, id := range ids {
		n := nodes[id]
		if err := n.srv.EnableCluster(server.ClusterOptions{Self: id, Peers: peers, Logf: t.Logf}); err != nil {
			t.Fatal(err)
		}
		n.repl = &cluster.ReplServer{Applier: n.srv, Logf: t.Logf, Heartbeat: n.srv.ClusterHeartbeat}
		go n.repl.Serve(n.replLn)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.kill()
		}
	})
	return nodes
}

// healthz is the subset of GET /healthz the tests read.
type healthz struct {
	Status  string `json:"status"`
	Cluster bool   `json:"cluster"`
	Node    string `json:"node"`
	Role    *struct {
		OwnedSessions    int   `json:"owned_sessions"`
		Replicas         int   `json:"replicas"`
		PromotedSessions int64 `json:"promoted_sessions"`
	} `json:"role"`
	Replication *struct {
		Ship *struct {
			Connected    bool  `json:"connected"`
			QueuedEvents int64 `json:"queued_events"`
		} `json:"ship"`
		AppliedEvents    int64 `json:"applied_events"`
		AppliedSnapshots int64 `json:"applied_snapshots"`
		Synced           *bool `json:"synced"`
	} `json:"replication"`
}

// quiesce runs the ?sync=1 replication barrier against a node and
// asserts the follower acknowledged the whole stream.
func quiesce(t *testing.T, n *clusterNode) healthz {
	t.Helper()
	var h healthz
	doJSON(t, "GET", n.ts.URL+"/healthz?sync=1", nil, http.StatusOK, &h)
	if h.Replication == nil || h.Replication.Synced == nil || !*h.Replication.Synced {
		t.Fatalf("node %s did not sync its replication stream: %+v", n.id, h)
	}
	if q := h.Replication.Ship.QueuedEvents; q != 0 {
		t.Fatalf("node %s still has %d queued replication events after sync", n.id, q)
	}
	return h
}

// TestClusterFailoverDifferential is the replication acceptance test:
// for every shipped strategy, a session is driven over HTTP against
// its owner node while a never-interrupted in-process core.Session
// tracks it in lockstep. Mid-dialogue — with a non-empty skip set and
// streamed-in arrivals — the owner is killed without warning, the
// follower is promoted, and the dialogue continues against it. Every
// proposal from the kill point to convergence must match the
// uninterrupted reference tuple for tuple.
func TestClusterFailoverDifferential(t *testing.T) {
	for _, name := range strategy.Names() {
		t.Run(name, func(t *testing.T) {
			var (
				initial *relation.Relation
				batches [][]relation.Tuple
				goal    partition.P
			)
			if name == "optimal" {
				initial, goal = workload.Travel(), workload.TravelQ2()
			} else {
				stream, err := workload.NewStream("synthetic", workload.StreamConfig{Batches: 2, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				initial, batches, goal = stream.Initial, stream.Batches, stream.Goal
			}

			refRel := relation.New(initial.Schema())
			initial.Each(func(i int, tu relation.Tuple) { refRel.MustAppend(tu) })
			refSt, err := core.NewState(refRel)
			if err != nil {
				t.Fatal(err)
			}
			picker, err := strategy.ByName(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			ref := core.NewSession(refSt, picker)
			ref.RedeferLimit = -1

			nodes := startCluster(t, "nA", "nB")
			owner := nodes["nA"]

			var csv bytes.Buffer
			if err := relation.WriteCSV(&csv, initial); err != nil {
				t.Fatal(err)
			}
			var s summary
			doJSON(t, "POST", owner.base()+"/sessions",
				map[string]any{"csv": csv.String(), "strategy": name, "seed": 7},
				http.StatusCreated, &s)

			label := func(i int) string {
				if core.Selects(goal, refSt.Relation().Tuple(i)) {
					return "+"
				}
				return "-"
			}

			nextBatch := 0
			questions := 0
			drive := func(base string, stopAt int) bool {
				for step := 0; ; step++ {
					if step > 6*refSt.Relation().Len() {
						t.Fatal("protocol did not converge")
					}
					if stopAt >= 0 && questions >= stopAt {
						return false
					}
					if nextBatch < len(batches) && step%4 == 3 {
						batch := batches[nextBatch]
						rows := make([][]string, len(batch))
						for bi, tu := range batch {
							row := make([]string, len(tu))
							for c, v := range tu {
								row[c] = relation.EncodeCell(v)
							}
							rows[bi] = row
						}
						doJSON(t, "POST", base+"/tuples", map[string]any{"rows": rows}, http.StatusOK, nil)
						if _, err := ref.Append(batch); err != nil {
							t.Fatal(err)
						}
						nextBatch++
						continue
					}
					var n next
					doJSON(t, "GET", base+"/next", nil, http.StatusOK, &n)
					refIdx, refOK := ref.Propose()
					if n.Done != !refOK {
						t.Fatalf("step %d: done=%v over HTTP, propose ok=%v in-process", step, n.Done, refOK)
					}
					if n.Done {
						if nextBatch < len(batches) {
							continue
						}
						return true
					}
					if n.Tuple.Index != refIdx {
						t.Fatalf("step %d (q%d): HTTP proposed tuple %d, reference %d",
							step, questions, n.Tuple.Index, refIdx)
					}
					if questions%5 == 2 {
						doJSON(t, "POST", base+"/label",
							map[string]any{"index": n.Tuple.Index, "label": "skip"}, http.StatusOK, nil)
						if err := ref.Skip(refIdx); err != nil {
							t.Fatal(err)
						}
					} else {
						doJSON(t, "POST", base+"/label",
							map[string]any{"index": n.Tuple.Index, "label": label(n.Tuple.Index)},
							http.StatusOK, nil)
						if _, err := ref.Answer(refIdx, parseLabel(label(refIdx))); err != nil {
							t.Fatal(err)
						}
					}
					questions++
				}
			}

			// Phase 1 on the owner: past the question-2 skip, so the
			// replica must carry a non-empty skip set across failover.
			converged := drive(owner.base()+"/sessions/"+s.ID, 3)

			// Bound replication lag to zero, then kill the owner cold.
			quiesce(t, owner)
			owner.kill()

			// Promote the survivor and verify it adopted the session.
			follower := nodes["nB"]
			var prom struct {
				PromotedTo      string `json:"promoted_to"`
				AdoptedSessions int    `json:"adopted_sessions"`
			}
			doJSON(t, "POST", follower.base()+"/cluster/promote",
				map[string]any{"node": "nA"}, http.StatusOK, &prom)
			if prom.PromotedTo != "nB" || prom.AdoptedSessions != 1 {
				t.Fatalf("promotion = %+v, want nB adopting 1 session", prom)
			}

			base := follower.base() + "/sessions/" + s.ID
			var sum summary
			doJSON(t, "GET", base, nil, http.StatusOK, &sum)
			p := ref.Progress()
			if sum.Labels != p.Explicit || sum.Implied != p.Implied ||
				sum.Informative != p.Informative || sum.Tuples != p.Total || sum.Done != ref.Done() {
				t.Fatalf("promoted summary %+v, reference progress %+v done=%v", sum, p, ref.Done())
			}
			if sum.Strategy != name {
				t.Fatalf("promoted strategy %q, want %q", sum.Strategy, name)
			}

			// Phase 2: finish on the promoted follower, still in lockstep.
			if !converged {
				drive(base, -1)
			}
			if !ref.Done() {
				t.Fatal("reference session did not converge with the promoted session")
			}
			var res struct {
				Done      bool   `json:"done"`
				Predicate string `json:"predicate"`
			}
			doJSON(t, "GET", base+"/result", nil, http.StatusOK, &res)
			if !res.Done {
				t.Error("promoted session not done")
			}
			if res.Predicate != ref.Result().String() {
				t.Errorf("final M_P on promoted node = %s, reference %s", res.Predicate, ref.Result().String())
			}
		})
	}
}

// TestClusterDrainUnderConcurrentTraffic races POST /v1/cluster/drain
// against mutating traffic: labelers and appenders hammer every
// session while repeated drains run the snapshot-all + sync barrier.
// Every drain must cover the whole fleet and clear the barrier, and
// once the traffic stops the follower must hold a replica of every
// session. CI runs this under -race.
func TestClusterDrainUnderConcurrentTraffic(t *testing.T) {
	nodes := startCluster(t, "nA", "nB")
	owner := nodes["nA"]

	const nSessions = 4
	ids := make([]string, nSessions)
	for i := range ids {
		var s summary
		doJSON(t, "POST", owner.base()+"/sessions",
			map[string]any{"csv": travelCSV, "strategy": "local-most-specific", "seed": 7},
			http.StatusCreated, &s)
		ids[i] = s.ID
	}

	// post fires a mutating request and drains the response; statuses
	// are deliberately not asserted — concurrent labels can lose races
	// (already answered, implied meanwhile) and that is fine, the test
	// is about drain's snapshot capture staying consistent under fire.
	post := func(url string, body any) {
		data, err := json.Marshal(body)
		if err != nil {
			return
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(data))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range ids {
		base := owner.base() + "/sessions/" + id
		wg.Add(2)
		// Labeler: the next/label write-lock path.
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + "/next")
				if err != nil {
					continue
				}
				var n next
				json.NewDecoder(resp.Body).Decode(&n)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if n.Done || n.Tuple == nil {
					continue // appends may revive the dialogue
				}
				label := "skip"
				if i%3 != 2 {
					label = [2]string{"+", "-"}[i%2]
				}
				post(base+"/label", map[string]any{"index": n.Tuple.Index, "label": label})
			}
		}()
		// Appender: the tuple-ingestion write path.
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				post(base+"/tuples", map[string]any{"rows": [][]string{
					{fmt.Sprintf("City%d", i), "Lille", "AF", "NYC", "AA"},
				}})
			}
		}()
	}

	for round := 0; round < 5; round++ {
		var dr struct {
			Sessions    int  `json:"sessions"`
			Snapshotted int  `json:"snapshotted"`
			Synced      bool `json:"synced"`
		}
		doJSON(t, "POST", owner.base()+"/cluster/drain", nil, http.StatusOK, &dr)
		if dr.Sessions != nSessions || dr.Snapshotted != dr.Sessions || !dr.Synced {
			t.Fatalf("drain round %d = %+v, want %d/%d sessions snapshotted and synced",
				round, dr, nSessions, nSessions)
		}
	}
	close(stop)
	wg.Wait()

	quiesce(t, owner)
	var h healthz
	doJSON(t, "GET", nodes["nB"].ts.URL+"/healthz", nil, http.StatusOK, &h)
	if h.Role == nil || h.Role.Replicas != nSessions {
		t.Fatalf("follower healthz role = %+v, want %d replicas", h.Role, nSessions)
	}
}

// TestClusterRedirectsToOwner pins the HTTP ownership contract: a
// request to the wrong node answers 307 with Location and X-Jim-Owner
// naming the owner and the not_owner envelope in the body, and a
// redirect-following client lands on the owner transparently.
func TestClusterRedirectsToOwner(t *testing.T) {
	nodes := startCluster(t, "nA", "nB")

	var s summary
	doJSON(t, "POST", nodes["nA"].base()+"/sessions",
		map[string]any{"csv": travelCSV, "strategy": "local-most-specific"}, http.StatusCreated, &s)

	// The session was allocated on nA, so nA owns it; ask nB.
	wrong := nodes["nB"]
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noFollow.Get(wrong.base() + "/sessions/" + s.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status = %d, want 307", resp.StatusCode)
	}
	ownerHTTP := strings.TrimPrefix(nodes["nA"].ts.URL, "http://")
	if got := resp.Header.Get("X-Jim-Owner"); got != "nA="+ownerHTTP {
		t.Errorf("X-Jim-Owner = %q, want %q", got, "nA="+ownerHTTP)
	}
	wantLoc := nodes["nA"].base() + "/sessions/" + s.ID
	if got := resp.Header.Get("Location"); got != wantLoc {
		t.Errorf("Location = %q, want %q", got, wantLoc)
	}
	var e errBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != string(jim.CodeNotOwner) {
		t.Errorf("envelope code = %q, want %q", e.Error.Code, jim.CodeNotOwner)
	}

	// A default client follows the 307 to the owner and succeeds —
	// DELETE included, so every session verb honors the contract.
	var sum summary
	doJSON(t, "GET", wrong.base()+"/sessions/"+s.ID, nil, http.StatusOK, &sum)
	if sum.ID != s.ID {
		t.Fatalf("followed redirect returned session %q, want %q", sum.ID, s.ID)
	}
	doJSON(t, "DELETE", wrong.base()+"/sessions/"+s.ID, nil, http.StatusNoContent, nil)
}

// TestClusterWireNotOwner pins the wire-protocol side of the same
// contract: ops on a non-owned session fail with CodeNotOwner and a
// "nodeID=address" message the client can redial from.
func TestClusterWireNotOwner(t *testing.T) {
	nodes := startCluster(t, "nA", "nB")
	var s summary
	doJSON(t, "POST", nodes["nA"].base()+"/sessions",
		map[string]any{"csv": travelCSV, "strategy": "local-most-specific"}, http.StatusCreated, &s)

	err := nodes["nB"].srv.WireDelete(s.ID)
	if jim.CodeOf(err) != jim.CodeNotOwner {
		t.Fatalf("WireDelete on non-owner: %v, want %s", err, jim.CodeNotOwner)
	}
	var je *jim.Error
	if !errors.As(err, &je) {
		t.Fatalf("error %v is not a *jim.Error", err)
	}
	ownerHTTP := strings.TrimPrefix(nodes["nA"].ts.URL, "http://")
	if je.Message != "nA="+ownerHTTP {
		t.Errorf("NOT_OWNER message = %q, want %q (no wire addr configured, falls back to http)",
			je.Message, "nA="+ownerHTTP)
	}
}

// TestHealthzSingleNode pins the probe outside cluster mode: always
// 200, no cluster block, store stats present.
func TestHealthzSingleNode(t *testing.T) {
	ts := newTestServer(t)
	var h struct {
		Status  string `json:"status"`
		Cluster bool   `json:"cluster"`
		Store   struct {
			Backend string `json:"backend"`
		} `json:"store"`
	}
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &h)
	if h.Status != "ok" || h.Cluster || h.Store.Backend != "mem" {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestHealthzClusterRoles pins the failover-detection signal: the
// owner reports its sessions, the follower reports replicas, and
// promotion moves the counts.
func TestHealthzClusterRoles(t *testing.T) {
	nodes := startCluster(t, "nA", "nB")
	var s summary
	doJSON(t, "POST", nodes["nA"].base()+"/sessions",
		map[string]any{"csv": travelCSV, "strategy": "local-most-specific"}, http.StatusCreated, &s)
	quiesce(t, nodes["nA"])

	var hA, hB healthz
	doJSON(t, "GET", nodes["nA"].ts.URL+"/healthz", nil, http.StatusOK, &hA)
	doJSON(t, "GET", nodes["nB"].ts.URL+"/healthz", nil, http.StatusOK, &hB)
	if hA.Node != "nA" || !hA.Cluster || hA.Role.OwnedSessions != 1 {
		t.Fatalf("owner healthz = %+v", hA)
	}
	if hB.Role.Replicas != 1 || hB.Replication.AppliedSnapshots == 0 {
		t.Fatalf("follower healthz = %+v", hB)
	}

	nodes["nA"].kill()
	doJSON(t, "POST", nodes["nB"].base()+"/cluster/promote",
		map[string]any{"node": "nA"}, http.StatusOK, nil)
	doJSON(t, "GET", nodes["nB"].ts.URL+"/healthz", nil, http.StatusOK, &hB)
	if hB.Role.OwnedSessions != 1 || hB.Role.Replicas != 0 || hB.Role.PromotedSessions != 1 {
		t.Fatalf("post-promotion healthz = %+v", hB)
	}

	var cl struct {
		Self   string            `json:"self"`
		Alive  []string          `json:"alive"`
		Failed map[string]string `json:"failed"`
	}
	doJSON(t, "GET", nodes["nB"].base()+"/cluster", nil, http.StatusOK, &cl)
	if cl.Self != "nB" || len(cl.Alive) != 1 || cl.Failed["nA"] != "nB" {
		t.Fatalf("cluster view = %+v", cl)
	}
}
