package server_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// diskConfig is the durable configuration the recovery tests run
// under: a tiny snapshot threshold so one dialogue exercises both the
// snapshot rewrite and the WAL-suffix replay paths.
func diskConfig(t *testing.T, dir string) (server.Config, *store.Disk) {
	t.Helper()
	ds, err := store.NewDisk(store.DiskOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return server.Config{Store: ds, SnapshotEvery: 3}, ds
}

// TestCrashRecoveryDifferential is the durability acceptance test: for
// every shipped strategy, a disk-backed HTTP session is driven through
// a scripted dialogue (labels, a skip left active, streamed-in arrival
// batches), killed without any graceful shutdown, and reopened from
// the same data directory. The recovered session must match an
// uninterrupted in-process core.Session tuple for tuple: same
// progress, same running result, and the same proposals from the crash
// point to convergence.
func TestCrashRecoveryDifferential(t *testing.T) {
	for _, name := range strategy.Names() {
		t.Run(name, func(t *testing.T) {
			var (
				initial *relation.Relation
				batches [][]relation.Tuple
				goal    partition.P
			)
			if name == "optimal" {
				// Exponential strategy: tiny fixed instance, no streaming.
				initial, goal = workload.Travel(), workload.TravelQ2()
			} else {
				stream, err := workload.NewStream("synthetic", workload.StreamConfig{Batches: 2, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				initial, batches, goal = stream.Initial, stream.Batches, stream.Goal
			}

			// The uninterrupted reference: a core.Session that will see
			// every operation exactly once, with no restart.
			refRel := relation.New(initial.Schema())
			initial.Each(func(i int, tu relation.Tuple) { refRel.MustAppend(tu) })
			refSt, err := core.NewState(refRel)
			if err != nil {
				t.Fatal(err)
			}
			picker, err := strategy.ByName(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			ref := core.NewSession(refSt, picker)
			ref.RedeferLimit = -1

			dir := t.TempDir()
			cfg, ds := diskConfig(t, dir)
			srv := server.NewWith(cfg)
			ts := httptest.NewServer(srv.Handler())

			var csv bytes.Buffer
			if err := relation.WriteCSV(&csv, initial); err != nil {
				t.Fatal(err)
			}
			var s summary
			doJSON(t, "POST", ts.URL+"/v1/sessions",
				map[string]any{"csv": csv.String(), "strategy": name, "seed": 7},
				http.StatusCreated, &s)

			label := func(i int) string {
				if core.Selects(goal, refSt.Relation().Tuple(i)) {
					return "+"
				}
				return "-"
			}

			// drive advances both sides until crashAt questions have been
			// asked (negative: until convergence), keeping them in
			// lockstep and returning whether the dialogue converged.
			nextBatch := 0
			questions := 0
			drive := func(base string, crashAt int) bool {
				for step := 0; ; step++ {
					if step > 6*refSt.Relation().Len() {
						t.Fatal("protocol did not converge")
					}
					if crashAt >= 0 && questions >= crashAt {
						return false
					}
					if nextBatch < len(batches) && step%4 == 3 {
						batch := batches[nextBatch]
						rows := make([][]string, len(batch))
						for bi, tu := range batch {
							row := make([]string, len(tu))
							for c, v := range tu {
								row[c] = relation.EncodeCell(v)
							}
							rows[bi] = row
						}
						doJSON(t, "POST", base+"/tuples", map[string]any{"rows": rows}, http.StatusOK, nil)
						if _, err := ref.Append(batch); err != nil {
							t.Fatal(err)
						}
						nextBatch++
						continue
					}
					var n next
					doJSON(t, "GET", base+"/next", nil, http.StatusOK, &n)
					refIdx, refOK := ref.Propose()
					if n.Done != !refOK {
						t.Fatalf("step %d: done=%v over HTTP, propose ok=%v in-process", step, n.Done, refOK)
					}
					if n.Done {
						if nextBatch < len(batches) {
							continue
						}
						return true
					}
					if n.Tuple.Index != refIdx {
						t.Fatalf("step %d (q%d): HTTP proposed tuple %d, reference %d",
							step, questions, n.Tuple.Index, refIdx)
					}
					if questions%5 == 2 {
						doJSON(t, "POST", base+"/label",
							map[string]any{"index": n.Tuple.Index, "label": "skip"}, http.StatusOK, nil)
						if err := ref.Skip(refIdx); err != nil {
							t.Fatal(err)
						}
					} else {
						doJSON(t, "POST", base+"/label",
							map[string]any{"index": n.Tuple.Index, "label": label(n.Tuple.Index)},
							http.StatusOK, nil)
						if _, err := ref.Answer(refIdx, parseLabel(label(refIdx))); err != nil {
							t.Fatal(err)
						}
					}
					questions++
				}
			}

			// Phase 1: crash right after the skip at question 2 has been
			// recorded — the skip set is non-empty at the crash point, so
			// recovery must restore proposal routing, not just labels.
			converged := drive(ts.URL+"/v1/sessions/"+s.ID, 3)

			// SIGKILL-style: no SnapshotAll, no janitor — just stop
			// serving and drop the process state. Close flushes nothing
			// beyond what every acknowledged request already persisted.
			ts.Close()
			if err := ds.Close(); err != nil {
				t.Fatal(err)
			}

			cfg2, ds2 := diskConfig(t, dir)
			srv2 := server.NewWith(cfg2)
			restored, err := srv2.Restore()
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if restored != 1 {
				t.Fatalf("restored %d sessions, want 1", restored)
			}
			ts2 := httptest.NewServer(srv2.Handler())
			defer ts2.Close()
			defer ds2.Close()
			base := ts2.URL + "/v1/sessions/" + s.ID

			// The recovered session must stand exactly where the
			// uninterrupted one stands: same progress counters, same
			// running result.
			var sum summary
			doJSON(t, "GET", base, nil, http.StatusOK, &sum)
			p := ref.Progress()
			if sum.Labels != p.Explicit || sum.Implied != p.Implied ||
				sum.Informative != p.Informative || sum.Tuples != p.Total || sum.Done != ref.Done() {
				t.Fatalf("recovered summary %+v, reference progress %+v done=%v", sum, p, ref.Done())
			}
			if sum.Strategy != name {
				t.Fatalf("recovered strategy %q, want %q", sum.Strategy, name)
			}
			var res struct {
				Done      bool   `json:"done"`
				Predicate string `json:"predicate"`
			}
			doJSON(t, "GET", base+"/result", nil, http.StatusOK, &res)
			if res.Predicate != ref.Result().String() {
				t.Fatalf("recovered M_P = %s, reference %s", res.Predicate, ref.Result().String())
			}

			// Phase 2: finish the dialogue against the recovered server,
			// still in lockstep with the never-interrupted reference —
			// every proposal from the crash point to convergence must
			// match.
			if !converged {
				drive(base, -1)
			}
			if !ref.Done() {
				t.Fatal("reference session did not converge with the recovered session")
			}
			doJSON(t, "GET", base+"/result", nil, http.StatusOK, &res)
			if !res.Done {
				t.Error("recovered session not done")
			}
			if res.Predicate != ref.Result().String() {
				t.Errorf("final M_P over recovered HTTP = %s, reference %s", res.Predicate, ref.Result().String())
			}
		})
	}
}

// TestEvictionDemotesToDiskWithoutDoubleCounting pins two contracts:
// an idle-TTL eviction snapshots the session before dropping it from
// RAM (so it survives the next restart), and neither eviction nor the
// startup replay touches the label/ingest counters — a restart must
// not inflate throughput metrics with replayed traffic.
func TestEvictionDemotesToDiskWithoutDoubleCounting(t *testing.T) {
	dir := t.TempDir()
	ds, err := store.NewDisk(store.DiskOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Now()
	srv := server.NewWith(server.Config{
		Store:   ds,
		IdleTTL: time.Minute,
		Now:     func() time.Time { return clock },
	})
	ts := httptest.NewServer(srv.Handler())

	var s summary
	doJSON(t, "POST", ts.URL+"/v1/sessions",
		map[string]any{"csv": travelCSV, "strategy": "lookahead-maxmin"},
		http.StatusCreated, &s)
	base := ts.URL + "/v1/sessions/" + s.ID
	// One label and one streamed-in batch: real traffic, counted once.
	var n next
	doJSON(t, "GET", base+"/next", nil, http.StatusOK, &n)
	doJSON(t, "POST", base+"/label",
		map[string]any{"index": n.Tuple.Index, "label": "+"}, http.StatusOK, nil)
	doJSON(t, "POST", base+"/tuples",
		map[string]any{"rows": [][]string{{"Lille", "Paris", "AF", "Paris", "None"}}},
		http.StatusOK, nil)

	type stats struct {
		Sessions struct {
			Active   int64 `json:"active"`
			Evicted  int64 `json:"evicted"`
			Restored int64 `json:"restored"`
		} `json:"sessions"`
		Labels struct {
			Total int64 `json:"total"`
		} `json:"labels"`
		Ingest struct {
			Appends        int64 `json:"appends"`
			TuplesAppended int64 `json:"tuples_appended"`
		} `json:"ingest"`
		Store struct {
			Backend                string  `json:"backend"`
			RestoredSessions       int64   `json:"restored_sessions"`
			EventsLogged           int64   `json:"events_logged"`
			Snapshots              int64   `json:"snapshots"`
			LastSnapshotAgeSeconds float64 `json:"last_snapshot_age_seconds"`
		} `json:"store"`
	}
	var st stats
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &st)
	if st.Ingest.Appends != 1 || st.Ingest.TuplesAppended != 1 || st.Labels.Total != 1 {
		t.Fatalf("pre-eviction counters: %+v", st)
	}
	if st.Store.Backend != "disk" || st.Store.EventsLogged != 2 {
		t.Fatalf("pre-eviction store stats: %+v", st.Store)
	}

	// Idle the session out. Eviction snapshots, then drops from RAM —
	// and the counters must not move (the snapshot is maintenance, not
	// traffic).
	clock = clock.Add(2 * time.Minute)
	if n := srv.Sweep(); n != 1 {
		t.Fatalf("swept %d sessions, want 1", n)
	}
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &st)
	if st.Sessions.Active != 0 || st.Sessions.Evicted != 1 {
		t.Fatalf("post-eviction sessions: %+v", st.Sessions)
	}
	if st.Ingest.Appends != 1 || st.Ingest.TuplesAppended != 1 || st.Labels.Total != 1 {
		t.Fatalf("eviction moved traffic counters: %+v", st)
	}
	wantError(t, "GET", base, nil, http.StatusNotFound, "not_found")
	ts.Close()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the evicted session comes back from its snapshot, and
	// the replayed label/append appear in no traffic counter.
	ds2, err := store.NewDisk(store.DiskOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	srv2 := server.NewWith(server.Config{Store: ds2})
	restored, err := srv2.Restore()
	if err != nil || restored != 1 {
		t.Fatalf("restore = %d, %v; want 1 session", restored, err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	doJSON(t, "GET", ts2.URL+"/v1/stats", nil, http.StatusOK, &st)
	if st.Sessions.Active != 1 || st.Sessions.Restored != 1 || st.Store.RestoredSessions != 1 {
		t.Fatalf("post-restore sessions: %+v store: %+v", st.Sessions, st.Store)
	}
	if st.Labels.Total != 0 || st.Ingest.Appends != 0 || st.Ingest.TuplesAppended != 0 {
		t.Fatalf("startup replay double-counted traffic: %+v", st)
	}
	// The session is live again with its labeled work intact.
	var sum summary
	doJSON(t, "GET", ts2.URL+"/v1/sessions/"+s.ID, nil, http.StatusOK, &sum)
	if sum.Labels != 1 || sum.Tuples != 13 {
		t.Fatalf("restored summary: %+v", sum)
	}
	// The list endpoint carries the same durability block.
	var list struct {
		listBody
		Store struct {
			Backend          string `json:"backend"`
			RestoredSessions int64  `json:"restored_sessions"`
		} `json:"store"`
	}
	doJSON(t, "GET", ts2.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if list.Store.Backend != "disk" || list.Store.RestoredSessions != 1 {
		t.Fatalf("list store block: %+v", list.Store)
	}
}

// TestDeleteDiscardsDurableState: an explicit DELETE must remove the
// on-disk copy too, or the session would resurrect on restart.
func TestDeleteDiscardsDurableState(t *testing.T) {
	dir := t.TempDir()
	cfg, ds := diskConfig(t, dir)
	srv := server.NewWith(cfg)
	ts := httptest.NewServer(srv.Handler())

	var keep, drop summary
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{"csv": travelCSV}, http.StatusCreated, &keep)
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{"csv": travelCSV}, http.StatusCreated, &drop)
	doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+drop.ID, nil, http.StatusNoContent, nil)
	ts.Close()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2, ds2 := diskConfig(t, dir)
	defer ds2.Close()
	srv2 := server.NewWith(cfg2)
	restored, err := srv2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored %d sessions, want only the kept one", restored)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	doJSON(t, "GET", ts2.URL+"/v1/sessions/"+keep.ID, nil, http.StatusOK, nil)
	wantError(t, "GET", ts2.URL+"/v1/sessions/"+drop.ID, nil, http.StatusNotFound, "not_found")

	// New ids must not collide with restored ones: the id counter
	// resumes past the highest surviving session. (Ids of deleted
	// sessions may be reused after a restart, like every id is after a
	// memstore restart — uniqueness is guaranteed among live and
	// persisted sessions, which is what the table requires.)
	var fresh summary
	doJSON(t, "POST", ts2.URL+"/v1/sessions", map[string]any{"csv": travelCSV}, http.StatusCreated, &fresh)
	if fresh.ID == keep.ID {
		t.Fatalf("fresh session reused live id %s", fresh.ID)
	}
}

// TestSnapshotAllCompactsWALs: the graceful-shutdown path folds every
// dirty session into a snapshot so the next start replays no events.
func TestSnapshotAllCompactsWALs(t *testing.T) {
	dir := t.TempDir()
	cfg, ds := diskConfig(t, dir)
	srv := server.NewWith(cfg)
	ts := httptest.NewServer(srv.Handler())

	var s summary
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{"csv": travelCSV}, http.StatusCreated, &s)
	var n next
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/next", nil, http.StatusOK, &n)
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
		map[string]any{"index": n.Tuple.Index, "label": "+"}, http.StatusOK, nil)
	ts.Close()
	if err := srv.SnapshotAll(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2, err := store.NewDisk(store.DiskOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	saved, err := ds2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) != 1 || len(saved[0].Events) != 0 {
		t.Fatalf("after SnapshotAll: %d sessions, %d residual events", len(saved), len(saved[0].Events))
	}
	if saved[0].Snapshot == nil || len(saved[0].Snapshot.Session) == 0 {
		t.Fatal("snapshot missing after SnapshotAll")
	}
}

// TestDeleteOfDemotedSessionPurgesDisk: DELETE must mean gone even for
// a session the TTL sweeper already demoted to disk — otherwise the
// client gets a 404 "not found" while the data quietly resurrects on
// the next restart.
func TestDeleteOfDemotedSessionPurgesDisk(t *testing.T) {
	dir := t.TempDir()
	ds, err := store.NewDisk(store.DiskOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Now()
	srv := server.NewWith(server.Config{
		Store:   ds,
		IdleTTL: time.Minute,
		Now:     func() time.Time { return clock },
	})
	ts := httptest.NewServer(srv.Handler())
	var s summary
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{"csv": travelCSV}, http.StatusCreated, &s)
	clock = clock.Add(2 * time.Minute)
	if n := srv.Sweep(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	// The session is demoted: requests 404, but the durable copy lives.
	wantError(t, "DELETE", ts.URL+"/v1/sessions/"+s.ID, nil, http.StatusNotFound, "not_found")
	ts.Close()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2, err := store.NewDisk(store.DiskOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	srv2 := server.NewWith(server.Config{Store: ds2})
	restored, err := srv2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 {
		t.Fatalf("deleted-while-demoted session resurrected: restored %d", restored)
	}
}

// TestSnapshotAged: the janitor's age policy folds long-growing WALs
// into fresh snapshots without touching sessions whose log is empty.
func TestSnapshotAged(t *testing.T) {
	dir := t.TempDir()
	ds, err := store.NewDisk(store.DiskOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	clock := time.Now()
	srv := server.NewWith(server.Config{
		Store:          ds,
		SnapshotMaxAge: time.Minute,
		Now:            func() time.Time { return clock },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var dirty, clean summary
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{"csv": travelCSV}, http.StatusCreated, &dirty)
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{"csv": travelCSV}, http.StatusCreated, &clean)
	var n next
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+dirty.ID+"/next", nil, http.StatusOK, &n)
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+dirty.ID+"/label",
		map[string]any{"index": n.Tuple.Index, "label": "+"}, http.StatusOK, nil)

	if got := srv.SnapshotAged(); got != 0 {
		t.Fatalf("fresh WAL snapshotted early: %d", got)
	}
	clock = clock.Add(2 * time.Minute)
	if got := srv.SnapshotAged(); got != 1 {
		t.Fatalf("SnapshotAged = %d, want 1 (only the dirty session)", got)
	}
	saved, err := ds.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, sv := range saved {
		if len(sv.Events) != 0 {
			t.Errorf("%s still has %d WAL events after age snapshot", sv.ID, len(sv.Events))
		}
	}
}

// TestRecoveryPreservesSkipClearRounds pins the one mutation a read
// path makes: when every informative class is skipped, GET /next
// clears the set to start a re-offer round. That clear must reach the
// WAL — otherwise replayed skips pile onto a set the live session had
// emptied, and the recovered server proposes different tuples than the
// uninterrupted run.
func TestRecoveryPreservesSkipClearRounds(t *testing.T) {
	initial, goal := workload.Travel(), workload.TravelQ2()
	refRel := relation.New(initial.Schema())
	initial.Each(func(i int, tu relation.Tuple) { refRel.MustAppend(tu) })
	refSt, err := core.NewState(refRel)
	if err != nil {
		t.Fatal(err)
	}
	picker, err := strategy.ByName("lookahead-maxmin", 7)
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewSession(refSt, picker)
	ref.RedeferLimit = -1

	dir := t.TempDir()
	cfg, ds := diskConfig(t, dir)
	srv := server.NewWith(cfg)
	ts := httptest.NewServer(srv.Handler())
	var csv bytes.Buffer
	if err := relation.WriteCSV(&csv, initial); err != nil {
		t.Fatal(err)
	}
	var s summary
	doJSON(t, "POST", ts.URL+"/v1/sessions",
		map[string]any{"csv": csv.String(), "strategy": "lookahead-maxmin", "seed": 7},
		http.StatusCreated, &s)
	base := ts.URL + "/v1/sessions/" + s.ID

	// Skip every proposal until the re-offer round has happened and one
	// more skip landed after it: the live skip set is now a strict
	// subset of the replayed-without-clears one.
	propose := func(base string) (int, bool) {
		var n next
		doJSON(t, "GET", base+"/next", nil, http.StatusOK, &n)
		refIdx, refOK := ref.Propose()
		if n.Done != !refOK {
			t.Fatalf("done=%v over HTTP, propose ok=%v in-process", n.Done, refOK)
		}
		if n.Done {
			return 0, false
		}
		if n.Tuple.Index != refIdx {
			t.Fatalf("HTTP proposed tuple %d, reference %d", n.Tuple.Index, refIdx)
		}
		return refIdx, true
	}
	for step := 0; ; step++ {
		if step > 4*refRel.Len() {
			t.Fatal("re-offer round never happened")
		}
		i, ok := propose(base)
		if !ok {
			t.Fatal("converged before exercising a clear")
		}
		doJSON(t, "POST", base+"/label", map[string]any{"index": i, "label": "skip"}, http.StatusOK, nil)
		if err := ref.Skip(i); err != nil {
			t.Fatal(err)
		}
		if ref.SkipClears() >= 1 {
			break // this skip landed after a clear — the interesting state
		}
	}

	// SIGKILL-style stop, recover, and the proposals must still agree.
	ts.Close()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	cfg2, ds2 := diskConfig(t, dir)
	defer ds2.Close()
	srv2 := server.NewWith(cfg2)
	if n, err := srv2.Restore(); err != nil || n != 1 {
		t.Fatalf("restore = %d, %v", n, err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	base = ts2.URL + "/v1/sessions/" + s.ID
	// Finish the dialogue with oracle labels, lockstep to convergence.
	for step := 0; ; step++ {
		if step > 4*refRel.Len() {
			t.Fatal("no convergence after recovery")
		}
		i, ok := propose(base)
		if !ok {
			break
		}
		label := "-"
		if core.Selects(goal, refRel.Tuple(i)) {
			label = "+"
		}
		doJSON(t, "POST", base+"/label", map[string]any{"index": i, "label": label}, http.StatusOK, nil)
		if _, err := ref.Answer(i, parseLabel(label)); err != nil {
			t.Fatal(err)
		}
	}
	if !ref.Done() {
		t.Fatal("reference did not converge with the recovered session")
	}
}
