package server_test

import (
	"bytes"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// TestDifferentialConvergence drives the same instance, strategy, and
// goal through the HTTP API and through the in-process core.Engine,
// and requires both to infer the same predicate M_P with the same
// number of questions — the service must add routing and locking, not
// change the inference.
func TestDifferentialConvergence(t *testing.T) {
	synth := func(cfg workload.SynthConfig) func(t *testing.T) (*relation.Relation, partition.P) {
		return func(t *testing.T) (*relation.Relation, partition.P) {
			t.Helper()
			rel, goal, err := workload.Synthetic(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return rel, goal
		}
	}
	cases := []struct {
		name     string
		strategy string
		make     func(t *testing.T) (*relation.Relation, partition.P)
	}{
		{
			name: "travel/lookahead-maxmin", strategy: "lookahead-maxmin",
			make: func(t *testing.T) (*relation.Relation, partition.P) {
				return workload.Travel(), workload.TravelQ2()
			},
		},
		{
			name: "synthetic/lookahead-maxmin", strategy: "lookahead-maxmin",
			make: synth(workload.SynthConfig{Attrs: 6, Tuples: 80, GoalAtoms: 2, ExtraMerges: 1.5, Seed: 11}),
		},
		{
			name: "synthetic/lookahead-entropy", strategy: "lookahead-entropy",
			make: synth(workload.SynthConfig{Attrs: 5, Tuples: 60, GoalAtoms: 2, ExtraMerges: 2, Seed: 3}),
		},
		{
			name: "synthetic/local-most-specific", strategy: "local-most-specific",
			make: synth(workload.SynthConfig{Attrs: 6, Tuples: 100, GoalAtoms: 3, ExtraMerges: 1.5, Seed: 7}),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rel, goal := tc.make(t)

			// Reference: the in-process engine with a goal oracle.
			st, err := core.NewState(rel)
			if err != nil {
				t.Fatal(err)
			}
			picker, err := strategy.ByName(tc.strategy, 1)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := core.NewEngine(st, picker, oracle.Goal(goal)).Run()
			if err != nil {
				t.Fatal(err)
			}
			if !ref.Converged {
				t.Fatal("reference engine did not converge")
			}

			// Same inference over HTTP.
			var csv bytes.Buffer
			if err := relation.WriteCSV(&csv, rel); err != nil {
				t.Fatal(err)
			}
			ts := newTestServer(t)
			var s summary
			doJSON(t, "POST", ts.URL+"/sessions",
				map[string]any{"csv": csv.String(), "strategy": tc.strategy, "seed": 1},
				http.StatusCreated, &s)
			questions := 0
			for {
				var n next
				doJSON(t, "GET", ts.URL+"/sessions/"+s.ID+"/next", nil, http.StatusOK, &n)
				if n.Done {
					break
				}
				if n.Tuple == nil {
					t.Fatal("next returned neither done nor tuple")
				}
				if questions++; questions > rel.Len() {
					t.Fatal("server asked more questions than tuples")
				}
				label := "-"
				if core.Selects(goal, rel.Tuple(n.Tuple.Index)) {
					label = "+"
				}
				var lr labelResp
				doJSON(t, "POST", ts.URL+"/sessions/"+s.ID+"/label",
					map[string]any{"index": n.Tuple.Index, "label": label},
					http.StatusOK, &lr)
			}
			var res struct {
				Done      bool   `json:"done"`
				Predicate string `json:"predicate"`
			}
			doJSON(t, "GET", ts.URL+"/sessions/"+s.ID+"/result", nil, http.StatusOK, &res)
			if !res.Done {
				t.Error("HTTP session did not converge")
			}
			if res.Predicate != ref.Query.String() {
				t.Errorf("M_P over HTTP = %s, in-process = %s", res.Predicate, ref.Query.String())
			}
			if questions != ref.UserLabels {
				t.Errorf("questions over HTTP = %d, in-process = %d", questions, ref.UserLabels)
			}
		})
	}
}
