package server_test

import (
	"bytes"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// TestDifferentialConvergence drives the same instance, strategy, and
// goal through the HTTP API and through the in-process core.Engine,
// and requires both to infer the same predicate M_P with the same
// number of questions — the service must add routing and locking, not
// change the inference.
func TestDifferentialConvergence(t *testing.T) {
	synth := func(cfg workload.SynthConfig) func(t *testing.T) (*relation.Relation, partition.P) {
		return func(t *testing.T) (*relation.Relation, partition.P) {
			t.Helper()
			rel, goal, err := workload.Synthetic(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return rel, goal
		}
	}
	cases := []struct {
		name     string
		strategy string
		make     func(t *testing.T) (*relation.Relation, partition.P)
	}{
		{
			name: "travel/lookahead-maxmin", strategy: "lookahead-maxmin",
			make: func(t *testing.T) (*relation.Relation, partition.P) {
				return workload.Travel(), workload.TravelQ2()
			},
		},
		{
			name: "synthetic/lookahead-maxmin", strategy: "lookahead-maxmin",
			make: synth(workload.SynthConfig{Attrs: 6, Tuples: 80, GoalAtoms: 2, ExtraMerges: 1.5, Seed: 11}),
		},
		{
			name: "synthetic/lookahead-entropy", strategy: "lookahead-entropy",
			make: synth(workload.SynthConfig{Attrs: 5, Tuples: 60, GoalAtoms: 2, ExtraMerges: 2, Seed: 3}),
		},
		{
			name: "synthetic/local-most-specific", strategy: "local-most-specific",
			make: synth(workload.SynthConfig{Attrs: 6, Tuples: 100, GoalAtoms: 3, ExtraMerges: 1.5, Seed: 7}),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rel, goal := tc.make(t)

			// Reference: the in-process engine with a goal oracle.
			st, err := core.NewState(rel)
			if err != nil {
				t.Fatal(err)
			}
			picker, err := strategy.ByName(tc.strategy, 1)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := core.NewEngine(st, picker, oracle.Goal(goal)).Run()
			if err != nil {
				t.Fatal(err)
			}
			if !ref.Converged {
				t.Fatal("reference engine did not converge")
			}

			// Same inference over HTTP.
			var csv bytes.Buffer
			if err := relation.WriteCSV(&csv, rel); err != nil {
				t.Fatal(err)
			}
			ts := newTestServer(t)
			var s summary
			doJSON(t, "POST", ts.URL+"/v1/sessions",
				map[string]any{"csv": csv.String(), "strategy": tc.strategy, "seed": 1},
				http.StatusCreated, &s)
			questions := 0
			for {
				var n next
				doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/next", nil, http.StatusOK, &n)
				if n.Done {
					break
				}
				if n.Tuple == nil {
					t.Fatal("next returned neither done nor tuple")
				}
				if questions++; questions > rel.Len() {
					t.Fatal("server asked more questions than tuples")
				}
				label := "-"
				if core.Selects(goal, rel.Tuple(n.Tuple.Index)) {
					label = "+"
				}
				var lr labelResp
				doJSON(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
					map[string]any{"index": n.Tuple.Index, "label": label},
					http.StatusOK, &lr)
			}
			var res struct {
				Done      bool   `json:"done"`
				Predicate string `json:"predicate"`
			}
			doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/result", nil, http.StatusOK, &res)
			if !res.Done {
				t.Error("HTTP session did not converge")
			}
			if res.Predicate != ref.Query.String() {
				t.Errorf("M_P over HTTP = %s, in-process = %s", res.Predicate, ref.Query.String())
			}
			if questions != ref.UserLabels {
				t.Errorf("questions over HTTP = %d, in-process = %d", questions, ref.UserLabels)
			}
		})
	}
}

// TestDifferentialFullProtocol is the streaming protocol differential
// the /v1 redesign is held to: for every shipped strategy, a /v1
// HTTP session and an in-process core.Session configured identically
// must agree tuple-for-tuple through the whole dialogue — create,
// next, label, periodic skips, topk rankings, and streamed-in arrival
// batches — and infer the same predicate. The HTTP layer must be pure
// plumbing over the session: any divergence is a transport bug.
func TestDifferentialFullProtocol(t *testing.T) {
	for _, name := range strategy.Names() {
		t.Run(name, func(t *testing.T) {
			var (
				initial *relation.Relation
				batches [][]relation.Tuple
				goal    partition.P
			)
			if name == "optimal" {
				// Exponential strategy: tiny fixed instance, no streaming.
				initial, goal = workload.Travel(), workload.TravelQ2()
			} else {
				stream, err := workload.NewStream("synthetic", workload.StreamConfig{Batches: 3, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				initial, batches, goal = stream.Initial, stream.Batches, stream.Goal
			}

			// Reference: a core.Session over a copy of the initial
			// instance (the state takes ownership and grows it).
			refRel := relation.New(initial.Schema())
			initial.Each(func(i int, tu relation.Tuple) { refRel.MustAppend(tu) })
			refSt, err := core.NewState(refRel)
			if err != nil {
				t.Fatal(err)
			}
			picker, err := strategy.ByName(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			ref := core.NewSession(refSt, picker)
			ref.RedeferLimit = -1

			// The same session over /v1.
			var csv bytes.Buffer
			if err := relation.WriteCSV(&csv, initial); err != nil {
				t.Fatal(err)
			}
			ts := newTestServer(t)
			var s summary
			doJSON(t, "POST", ts.URL+"/v1/sessions",
				map[string]any{"csv": csv.String(), "strategy": name, "seed": 7},
				http.StatusCreated, &s)
			base := ts.URL + "/v1/sessions/" + s.ID

			label := func(i int) string {
				if core.Selects(goal, refSt.Relation().Tuple(i)) {
					return "+"
				}
				return "-"
			}
			nextBatch := 0
			questions := 0
			for step := 0; ; step++ {
				if step > 4*refSt.Relation().Len() {
					t.Fatal("protocol did not converge")
				}
				// Drip arrival batches into both sides.
				if nextBatch < len(batches) && step%4 == 3 {
					batch := batches[nextBatch]
					rows := make([][]string, len(batch))
					for bi, tu := range batch {
						row := make([]string, len(tu))
						for c, v := range tu {
							row[c] = relation.EncodeCell(v)
						}
						rows[bi] = row
					}
					var ar appendResp
					doJSON(t, "POST", base+"/tuples", map[string]any{"rows": rows}, http.StatusOK, &ar)
					refNewly, err := ref.Append(batch)
					if err != nil {
						t.Fatal(err)
					}
					if len(refNewly) != len(ar.NewlyImplied) {
						t.Fatalf("step %d: append implied %d over HTTP, %d in-process",
							step, len(ar.NewlyImplied), len(refNewly))
					}
					nextBatch++
					continue
				}
				// Compare a topk ranking every few steps (KPickers only).
				if step%5 == 4 {
					if _, isKP := picker.(core.KPicker); isKP && !ref.Done() {
						var out struct {
							Tuples []struct {
								Index int `json:"index"`
							} `json:"tuples"`
						}
						doJSON(t, "GET", base+"/topk?k=3", nil, http.StatusOK, &out)
						refTop, err := ref.TopK(3)
						if err != nil {
							t.Fatal(err)
						}
						if len(out.Tuples) != len(refTop) {
							t.Fatalf("step %d: topk %d over HTTP, %d in-process", step, len(out.Tuples), len(refTop))
						}
						for k := range refTop {
							if out.Tuples[k].Index != refTop[k] {
								t.Fatalf("step %d: topk[%d] = %d over HTTP, %d in-process",
									step, k, out.Tuples[k].Index, refTop[k])
							}
						}
					}
					continue
				}
				var n next
				doJSON(t, "GET", base+"/next", nil, http.StatusOK, &n)
				refIdx, refOK := ref.Propose()
				if n.Done != !refOK {
					t.Fatalf("step %d: done=%v over HTTP, propose ok=%v in-process", step, n.Done, refOK)
				}
				if n.Done {
					if nextBatch < len(batches) {
						continue // converged early; arrivals still pending
					}
					break
				}
				if n.Tuple.Index != refIdx {
					t.Fatalf("step %d: HTTP proposed tuple %d, session proposed %d", step, n.Tuple.Index, refIdx)
				}
				// Skip every 7th question on both sides; label otherwise.
				if questions%7 == 6 {
					var lr labelResp
					doJSON(t, "POST", base+"/label",
						map[string]any{"index": n.Tuple.Index, "label": "skip"}, http.StatusOK, &lr)
					if err := ref.Skip(refIdx); err != nil {
						t.Fatal(err)
					}
				} else {
					var lr labelResp
					doJSON(t, "POST", base+"/label",
						map[string]any{"index": n.Tuple.Index, "label": label(n.Tuple.Index)},
						http.StatusOK, &lr)
					out, err := ref.Answer(refIdx, parseLabel(label(refIdx)))
					if err != nil {
						t.Fatal(err)
					}
					if len(lr.NewlyImplied) != len(out.NewlyImplied) {
						t.Fatalf("step %d: label implied %d over HTTP, %d in-process",
							step, len(lr.NewlyImplied), len(out.NewlyImplied))
					}
				}
				questions++
			}
			if !ref.Done() {
				t.Fatal("reference session did not converge with the HTTP session")
			}
			var res struct {
				Done      bool   `json:"done"`
				Predicate string `json:"predicate"`
			}
			doJSON(t, "GET", base+"/result", nil, http.StatusOK, &res)
			if !res.Done {
				t.Error("HTTP session not done")
			}
			if res.Predicate != ref.Result().String() {
				t.Errorf("M_P over HTTP = %s, in-process = %s", res.Predicate, ref.Result().String())
			}
		})
	}
}

func parseLabel(s string) core.Label {
	if s == "+" {
		return core.Positive
	}
	return core.Negative
}
