package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	jim "repro"
	"repro/internal/cluster"
	"repro/internal/store"
)

// This file is the server side of internal/cluster: session ownership
// (consistent-hash routing with 307 redirects or transparent
// proxying), the shipping hooks that stream committed WAL frames to
// the designated follower, the replica set a follower keeps warm, and
// the promotion/drain endpoints that move ownership on node death or
// planned maintenance. A server without EnableCluster behaves exactly
// as before — every hook is nil-guarded.

// ClusterOptions configures EnableCluster.
type ClusterOptions struct {
	// Self is this node's id; it must appear in Peers.
	Self string
	// Peers is the full static peer set (this node included).
	Peers []cluster.Node
	// Vnodes is the ring's virtual-node count; <= 0 means
	// cluster.DefaultVnodes.
	Vnodes int
	// Proxy transparently proxies non-owned requests to the owner
	// instead of answering 307.
	Proxy bool
	// ReplBuffer is the shipper queue capacity; <= 0 means default.
	ReplBuffer int
	Logf       func(format string, args ...any)
	// Lease enables the built-in failure detector: a peer unheard-from
	// for this long is probed directly and, if a quorum of reachable
	// survivors agrees it is gone, automatically failed over — no
	// operator POST /promote. 0 disables the detector (operator-driven
	// failover only).
	Lease time.Duration
	// HeartbeatEvery is the heartbeat period on the outbound repl
	// stream; <= 0 with Lease > 0 defaults to Lease/4.
	HeartbeatEvery time.Duration
	// DetectEvery runs background detection passes on this period;
	// <= 0 with Lease > 0 leaves detection to explicit TickCluster
	// calls (how the chaos harness drives time deterministically).
	DetectEvery time.Duration
	// ProbeTimeout bounds each direct liveness probe (default 1s).
	ProbeTimeout time.Duration
}

// clusterState hangs off Server when cluster mode is on.
type clusterState struct {
	self       cluster.Node
	proxy      bool
	logf       func(format string, args ...any)
	membership atomic.Pointer[cluster.Membership]
	// shipper streams our sessions to the designated follower; nil
	// when no peer can receive replication.
	shipper *cluster.Shipper
	// proxies caches one ReverseProxy per peer (proxy mode).
	proxies sync.Map

	// replicas holds the sessions we follow for other owners — a
	// separate map, NOT the main table, so replicas never appear in
	// listings, never count against the session cap, and never get
	// swept. repMu guards the map and every replica's seq.
	repMu    sync.Mutex
	replicas map[string]*replica

	// detector is the lease failure detector; nil when Lease is 0.
	detector     *cluster.Detector
	lease        time.Duration
	probeTimeout time.Duration
	client       *http.Client
	// rejoinState tracks a rejoin in flight on this node, surfaced in
	// GET /v1/cluster for operators watching the transition.
	rejoinState atomic.Pointer[rejoinProgress]

	promoted     atomic.Int64 // sessions adopted from peers (failover, rejoin, rebalance)
	applied      atomic.Int64 // replication events applied
	appliedSnaps atomic.Int64 // replication snapshots applied
	rejected     atomic.Int64 // replication messages refused
}

// replica is one followed session plus the last replication sequence
// applied to it (the dedup watermark for resync replays).
type replica struct {
	ls  *liveSession
	seq uint64
}

// EnableCluster switches the server into cluster mode. Call it after
// NewWith/Restore and before serving traffic: it is not safe to
// enable on a server already handling requests.
func (s *Server) EnableCluster(opts ClusterOptions) error {
	if s.cluster != nil {
		return errors.New("server: cluster mode already enabled")
	}
	m, err := cluster.NewMembership(opts.Peers, opts.Vnodes)
	if err != nil {
		return err
	}
	self, ok := m.Node(opts.Self)
	if !ok {
		return fmt.Errorf("server: node %q is not in the peer set", opts.Self)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &clusterState{self: self, proxy: opts.Proxy, logf: logf, replicas: map[string]*replica{}}
	c.membership.Store(m)
	c.probeTimeout = opts.ProbeTimeout
	if c.probeTimeout <= 0 {
		c.probeTimeout = time.Second
	}
	c.client = &http.Client{}
	s.cluster = c
	hb := opts.HeartbeatEvery
	if hb <= 0 && opts.Lease > 0 {
		hb = opts.Lease / 4
	}
	if f, ok := m.FollowerOf(self.ID); ok && f.Repl != "" {
		c.shipper = cluster.NewShipper(cluster.ShipperOptions{
			Self:           self.ID,
			Target:         f.Repl,
			Resync:         s.resyncShip,
			Logf:           logf,
			Buffer:         opts.ReplBuffer,
			HeartbeatEvery: hb,
		})
	}
	if opts.Lease > 0 {
		c.lease = opts.Lease
		c.detector = cluster.NewDetector(cluster.DetectorOptions{
			Self:    self.ID,
			Lease:   opts.Lease,
			View:    c.membership.Load,
			Probe:   c.probeNode,
			Confirm: c.confirmVia,
			OnDead: func(id string) {
				if _, _, err := s.failNode(id); err != nil {
					logf("cluster: auto-failover of %s: %v", id, err)
				}
			},
			Now:  s.now,
			Logf: logf,
		})
		if opts.DetectEvery > 0 {
			c.detector.Run(opts.DetectEvery)
		}
	}
	return nil
}

// CloseCluster stops the failure detector and the replication
// shipper. Safe on any server.
func (s *Server) CloseCluster() {
	if s.cluster == nil {
		return
	}
	if s.cluster.detector != nil {
		s.cluster.detector.Close()
	}
	if s.cluster.shipper != nil {
		s.cluster.shipper.Close()
	}
}

// ClusterHeartbeat renews a peer's failure-detector lease; wire it as
// the repl server's Heartbeat hook. No-op without a detector.
func (s *Server) ClusterHeartbeat(from string) {
	if c := s.cluster; c != nil && c.detector != nil {
		c.detector.Heartbeat(from)
	}
}

// TickCluster runs one failure-detection pass and returns the node
// ids confirmed dead this pass (each already failed over). The chaos
// harness calls this under an injected clock; production servers use
// DetectEvery for a background loop instead.
func (s *Server) TickCluster() []string {
	if c := s.cluster; c != nil && c.detector != nil {
		return c.detector.Tick()
	}
	return nil
}

// probeNode is the detector's direct liveness check: does the node
// answer GET /healthz within the probe timeout?
func (c *clusterState) probeNode(n cluster.Node) bool {
	if n.HTTP == "" {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+n.HTTP+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// confirmVia asks another live peer for a second opinion on a
// suspect, via its GET /v1/cluster/probe endpoint. An error means the
// peer could not be asked (it abstains from the quorum vote).
func (c *clusterState) confirmVia(peer cluster.Node, suspect string) (bool, error) {
	if peer.HTTP == "" {
		return false, errors.New("peer has no http address")
	}
	// The peer runs its own probe inside this call, so allow it a
	// probe timeout plus slack of our own.
	ctx, cancel := context.WithTimeout(context.Background(), 2*c.probeTimeout)
	defer cancel()
	u := "http://" + peer.HTTP + "/v1/cluster/probe?node=" + url.QueryEscape(suspect)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false, fmt.Errorf("probe via %s: HTTP %d", peer.ID, resp.StatusCode)
	}
	var pr probeResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return false, err
	}
	return pr.Reachable, nil
}

// shipperFor returns the replication shipper, nil when not shipping.
func (s *Server) shipperFor() *cluster.Shipper {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.shipper
}

// ownsID reports whether this node owns the session id. Single-node
// servers own everything.
func (s *Server) ownsID(id string) bool {
	if s.cluster == nil {
		return true
	}
	return s.cluster.membership.Load().OwnerID(id) == s.cluster.self.ID
}

// allocID draws fresh session ids until one lands in this node's hash
// range, so every node allocates from a disjoint id space and a create
// never needs forwarding. Expected tries = node count.
func (s *Server) allocID() string {
	for {
		id := fmt.Sprintf("s%04d", s.nextID.Add(1))
		if s.ownsID(id) {
			return id
		}
	}
}

// routeAway answers a request for a session this node does not own:
// a transparent proxy to the owner in proxy mode, otherwise a 307
// whose Location and X-Jim-Owner headers carry the owner, with the
// structured not_owner envelope as the body.
func (s *Server) routeAway(w http.ResponseWriter, r *http.Request, id string) {
	c := s.cluster
	owner := c.membership.Load().Owner(id)
	if owner.ID == "" || owner.HTTP == "" {
		writeError(w, jim.CodeInternal, "no reachable owner for session %q", id)
		return
	}
	if c.proxy {
		c.proxyTo(owner).ServeHTTP(w, r)
		return
	}
	w.Header().Set("X-Jim-Owner", owner.ID+"="+owner.HTTP)
	w.Header().Set("Location", "http://"+owner.HTTP+r.URL.RequestURI())
	writeError(w, jim.CodeNotOwner, "session %q is owned by %s at %s", id, owner.ID, owner.HTTP)
}

// checkWireOwner is routeAway for the wire protocol: the NOT_OWNER
// error frame's message carries "nodeID=address" (wire address when
// the owner has one, HTTP otherwise).
func (s *Server) checkWireOwner(id string) error {
	if s.ownsID(id) {
		return nil
	}
	owner := s.cluster.membership.Load().Owner(id)
	addr := owner.Wire
	if addr == "" {
		addr = owner.HTTP
	}
	return &jim.Error{Code: jim.CodeNotOwner, Message: owner.ID + "=" + addr}
}

func (c *clusterState) proxyTo(n cluster.Node) http.Handler {
	if p, ok := c.proxies.Load(n.ID); ok {
		return p.(http.Handler)
	}
	p := httputil.NewSingleHostReverseProxy(&url.URL{Scheme: "http", Host: n.HTTP})
	p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		writeError(w, jim.CodeInternal, "proxying to %s: %v", n.ID, err)
	}
	actual, _ := c.proxies.LoadOrStore(n.ID, p)
	return actual.(http.Handler)
}

// resyncShip is the shipper's Resync callback: on every (re)connect —
// and after a queue overflow — ship a current snapshot of every live
// session. Runs on the shipper goroutine; buildSnapshot under
// RLock+pickMu is exactly the snapshotLive capture discipline, and
// Seq is read under the same locks, so the snapshot and its watermark
// agree.
func (s *Server) resyncShip(ship func(id string, snap store.Snapshot)) {
	s.sessions.forEach(func(id string, ls *liveSession) {
		snap, err := captureSnapshot(ls)
		if err != nil {
			if err != errSessionDeleted {
				s.cluster.logf("cluster: resync snapshot %s: %v", id, err)
			}
			return
		}
		ship(id, snap)
	})
}

// errSessionDeleted marks a snapshot capture that lost the race with
// a purge — nothing to ship, not a failure.
var errSessionDeleted = errors.New("server: session deleted")

// captureSnapshot captures one live session plus its replication
// watermark: buildSnapshot under RLock+pickMu is exactly the
// snapshotLive capture discipline, and Seq is read under the same
// locks, so the snapshot and its watermark agree.
func captureSnapshot(ls *liveSession) (store.Snapshot, error) {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	if ls.deleted {
		return store.Snapshot{}, errSessionDeleted
	}
	ls.pickMu.Lock()
	snap, err := buildSnapshot(ls)
	if err == nil {
		snap.Seq = ls.replSeq.Load()
	}
	ls.pickMu.Unlock()
	return snap, err
}

// ApplySnapshot implements cluster.Applier: rebuild the shipped
// session through the exact crash-recovery path and (re)place it in
// the replica set. Snapshots always replace — within a stream they
// are captured from current owner state and FIFO-ordered, and a fresh
// stream (owner restart, new replication epoch) must reset the
// watermark rather than be refused by a stale one.
func (s *Server) ApplySnapshot(id string, snap *store.Snapshot) error {
	c := s.cluster
	if c == nil {
		return errors.New("server: not in cluster mode")
	}
	if _, live := s.sessions.get(id); live && s.ownsID(id) {
		// We already own this session (it was adopted); late frames
		// from its dead ex-owner's stream must not shadow it.
		c.rejected.Add(1)
		return nil
	}
	ls, err := s.rebuild(store.Saved{ID: id, Snapshot: snap})
	if err != nil {
		c.rejected.Add(1)
		return fmt.Errorf("rebuilding replica %q: %w", id, err)
	}
	ls.replSeq.Store(snap.Seq)
	if s.ownsID(id) {
		// Shipped state for our own range while nothing is live here:
		// the receive half of a rebalance handoff. Absorb it straight
		// into the live table — no later promotion step will adopt it.
		s.absorbSession(id, ls)
		c.appliedSnaps.Add(1)
		return nil
	}
	c.repMu.Lock()
	c.replicas[id] = &replica{ls: ls, seq: snap.Seq}
	c.repMu.Unlock()
	c.appliedSnaps.Add(1)
	return nil
}

// absorbSession places a freshly rebuilt session this node owns into
// the live table: any stale replica of it is dropped, the id counter
// advances past it, and a local snapshot re-protects it (persisting
// it and shipping it onward to OUR follower).
func (s *Server) absorbSession(id string, ls *liveSession) {
	c := s.cluster
	c.repMu.Lock()
	delete(c.replicas, id)
	c.repMu.Unlock()
	ls.touch(s.now())
	s.sessions.putRestored(id, ls)
	if n, ok := numericID(id); ok {
		for {
			cur := s.nextID.Load()
			if n <= cur || s.nextID.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	c.promoted.Add(1)
	if s.durable || c.shipper != nil {
		if err := s.snapshotSession(id, ls); err != nil {
			s.persist.errors.Add(1)
		}
	}
}

// ApplyEvent implements cluster.Applier: replay one shipped WAL event
// into the replica. Events at or below the watermark are resync
// replays and drop silently; an event for an unknown session is
// refused (its snapshot has not arrived — the shipper's next resync
// heals it).
func (s *Server) ApplyEvent(id string, ev store.Event) error {
	c := s.cluster
	if c == nil {
		return errors.New("server: not in cluster mode")
	}
	c.repMu.Lock()
	rep := c.replicas[id]
	if rep == nil {
		c.repMu.Unlock()
		if _, live := s.sessions.get(id); live && s.ownsID(id) {
			c.rejected.Add(1)
			return nil
		}
		c.rejected.Add(1)
		return fmt.Errorf("no replica %q (event before snapshot; awaiting resync)", id)
	}
	if ev.Seq <= rep.seq {
		c.repMu.Unlock()
		return nil
	}
	ls := rep.ls
	c.repMu.Unlock()
	ls.mu.Lock()
	err := replayEvent(ls.sess, ev)
	ls.mu.Unlock()
	if err != nil {
		c.rejected.Add(1)
		return fmt.Errorf("applying event seq %d to replica %q: %w", ev.Seq, id, err)
	}
	c.repMu.Lock()
	if cur := c.replicas[id]; cur == rep {
		rep.seq = ev.Seq
	}
	c.repMu.Unlock()
	ls.replSeq.Store(ev.Seq)
	c.applied.Add(1)
	return nil
}

// DropReplica implements cluster.Applier: the owner deleted the
// session.
func (s *Server) DropReplica(id string) error {
	c := s.cluster
	if c == nil {
		return errors.New("server: not in cluster mode")
	}
	c.repMu.Lock()
	delete(c.replicas, id)
	c.repMu.Unlock()
	return nil
}

type promoteRequest struct {
	// Node is the dead node whose sessions should fail over.
	Node string `json:"node"`
}

type promoteResponse struct {
	Node            string   `json:"node"`
	PromotedTo      string   `json:"promoted_to"`
	AdoptedSessions int      `json:"adopted_sessions"`
	Alive           []string `json:"alive"`
}

// handlePromote marks a peer failed in this node's membership view
// and adopts every replica the new view assigns to us — the failover
// step an operator (or the loadtest harness) drives on each survivor
// after detecting a death. Idempotent: re-promoting an already-failed
// node adopts nothing new.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, jim.CodeBadInput, "server is not running in cluster mode")
		return
	}
	var req promoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, jim.CodeBadInput, "decoding request: %v", err)
		return
	}
	if req.Node == "" {
		writeError(w, jim.CodeBadInput, "missing node")
		return
	}
	if req.Node == c.self.ID {
		writeError(w, jim.CodeBadInput, "cannot mark self (%s) failed", c.self.ID)
		return
	}
	m, adopted, err := s.failNode(req.Node)
	if err != nil {
		writeError(w, jim.CodeBadInput, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, promoteResponse{
		Node:            req.Node,
		PromotedTo:      m.Failed()[req.Node],
		AdoptedSessions: adopted,
		Alive:           m.Alive(),
	})
}

// failNode is the shared core of operator promotion and detector
// auto-failover: mark id failed (CAS loop against concurrent view
// changes), adopt every replica the new view assigns to us, and
// retarget the shipper. Idempotent — failing an already-failed node
// adopts nothing new.
func (s *Server) failNode(id string) (*cluster.Membership, int, error) {
	c := s.cluster
	var m *cluster.Membership
	for {
		old := c.membership.Load()
		next, err := old.Fail(id)
		if err != nil {
			return nil, 0, err
		}
		if next == old || c.membership.CompareAndSwap(old, next) {
			m = next
			break
		}
	}
	adopted := s.adoptReplicas(m)
	// The failure may have changed who our follower is; retarget after
	// adoption so the retarget resync covers the adopted sessions too.
	s.retargetShipper(m)
	c.logf("cluster: %s marked failed, adopted %d sessions", id, adopted)
	return m, adopted, nil
}

// retargetShipper points the replication stream at the follower the
// view m designates, parking it when nobody can receive.
func (s *Server) retargetShipper(m *cluster.Membership) {
	c := s.cluster
	if c.shipper == nil {
		return
	}
	if f, ok := m.FollowerOf(c.self.ID); ok && f.Repl != "" {
		c.shipper.SetTarget(f.Repl)
	} else {
		c.shipper.SetTarget("")
	}
}

// adoptReplicas moves every replica the membership view m assigns to
// this node out of the replica set and into the live table, advances
// the id counter past the adopted ids, and re-protects each adoptee
// with a local snapshot (which also ships it to OUR follower).
func (s *Server) adoptReplicas(m *cluster.Membership) int {
	c := s.cluster
	type adoptee struct {
		id string
		ls *liveSession
	}
	var adopt []adoptee
	c.repMu.Lock()
	for id, rep := range c.replicas {
		if m.OwnerID(id) == c.self.ID {
			adopt = append(adopt, adoptee{id, rep.ls})
			delete(c.replicas, id)
		}
	}
	c.repMu.Unlock()
	var maxID int64
	for _, a := range adopt {
		a.ls.touch(s.now())
		s.sessions.putRestored(a.id, a.ls)
		if n, ok := numericID(a.id); ok && n > maxID {
			maxID = n
		}
	}
	for {
		cur := s.nextID.Load()
		if maxID <= cur || s.nextID.CompareAndSwap(cur, maxID) {
			break
		}
	}
	c.promoted.Add(int64(len(adopt)))
	if s.durable || c.shipper != nil {
		for _, a := range adopt {
			if err := s.snapshotSession(a.id, a.ls); err != nil {
				s.persist.errors.Add(1)
			}
		}
	}
	return len(adopt)
}

type drainResponse struct {
	Sessions    int  `json:"sessions"`
	Snapshotted int  `json:"snapshotted"`
	Synced      bool `json:"synced"`
}

// handleDrain prepares this node for planned removal: every live
// session is folded into a fresh snapshot (shipped to the follower),
// then the replication stream is synced so the follower has
// acknowledged everything. After a drain returns synced=true, the
// operator promotes this node's range on the survivors and stops the
// process — the TTL-demotion flavored counterpart of kill -9.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, jim.CodeBadInput, "server is not running in cluster mode")
		return
	}
	total, snapped := 0, 0
	s.sessions.forEach(func(id string, ls *liveSession) {
		total++
		if err := s.snapshotSession(id, ls); err != nil {
			s.persist.errors.Add(1)
			return
		}
		snapped++
	})
	synced := false
	if c.shipper != nil {
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		defer cancel()
		synced = c.shipper.Sync(ctx) == nil
	}
	writeJSON(w, http.StatusOK, drainResponse{Sessions: total, Snapshotted: snapped, Synced: synced})
}

// probeResponse is GET /v1/cluster/probe: this node's own view of
// whether it can reach the named peer — the second opinion a
// suspecting detector collects for its quorum.
type probeResponse struct {
	Node      string `json:"node"`
	Reachable bool   `json:"reachable"`
}

// handleClusterProbe answers a peer's quorum-confirmation request by
// running our own direct liveness probe of the suspect.
func (s *Server) handleClusterProbe(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, jim.CodeBadInput, "server is not running in cluster mode")
		return
	}
	id := r.URL.Query().Get("node")
	if id == "" {
		writeError(w, jim.CodeBadInput, "missing node")
		return
	}
	n, ok := c.membership.Load().Node(id)
	if !ok {
		writeError(w, jim.CodeBadInput, "unknown node %q", id)
		return
	}
	if id == c.self.ID {
		writeJSON(w, http.StatusOK, probeResponse{Node: id, Reachable: true})
		return
	}
	writeJSON(w, http.StatusOK, probeResponse{Node: id, Reachable: c.probeNode(n)})
}

// handoff is one session leaving this node during a rejoin or
// rebalance range transfer.
type handoff struct {
	id string
	ls *liveSession
}

// shipSessionsTo streams a snapshot of each session to the target
// node's repl listener through a dedicated shipper and waits for the
// sync barrier — the drain path pointed at an arbitrary peer instead
// of our designated follower.
func (s *Server) shipSessionsTo(ctx context.Context, n cluster.Node, hand []handoff) error {
	tmp := cluster.NewShipper(cluster.ShipperOptions{
		Self:   s.cluster.self.ID,
		Target: n.Repl,
		Logf:   s.cluster.logf,
	})
	defer tmp.Close()
	for _, h := range hand {
		snap, err := captureSnapshot(h.ls)
		if err != nil {
			// Deleted mid-handoff: nothing to move. Other capture
			// failures surface at the sync barrier as a count mismatch
			// only if the session truly never ships; log them.
			if err != errSessionDeleted {
				s.cluster.logf("cluster: handoff snapshot %s: %v", h.id, err)
			}
			continue
		}
		tmp.ShipSnapshot(h.id, snap)
	}
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	return tmp.Sync(sctx)
}

// releaseSession finishes a range handoff: the session leaves the
// live table (demoted, not deleted — it lives on under a new owner),
// our follower is told to drop its replica, and the local durable
// copy is compacted away so a future restart of this node does not
// resurrect stale state. When this node is the new owner's designated
// follower, the still-warm state stays in the replica set instead —
// the new owner's stream keeps it fresh from here on. A write racing
// the handoff can recreate a WAL remnant after the compaction;
// restore logs and skips those.
func (s *Server) releaseSession(id string, ls *liveSession, keepReplica bool) {
	c := s.cluster
	s.sessions.demote(id)
	if keepReplica {
		c.repMu.Lock()
		c.replicas[id] = &replica{ls: ls, seq: ls.replSeq.Load()}
		c.repMu.Unlock()
	}
	if c.shipper != nil {
		c.shipper.ShipDrop(id)
	}
	if s.durable {
		if err := s.cfg.Store.Compact(id); err != nil {
			s.persist.errors.Add(1)
		}
	}
}

type rejoinRequest struct {
	// Node is the restarted node reclaiming its range.
	Node string `json:"node"`
}

type rejoinResponse struct {
	Node        string   `json:"node"`
	Transferred int      `json:"transferred"`
	Synced      bool     `json:"synced"`
	Alive       []string `json:"alive"`
}

// handleRejoin brings a previously failed peer back into this node's
// view: every live session the rejoined view assigns to it is shipped
// to its repl listener (with a sync barrier — routing only flips after
// the state has provably arrived), then the view CASes to Rejoin and
// the transferred sessions are released. On nodes holding none of the
// returning range this degenerates to the bare view flip, so the
// rejoining node broadcasts the same call to every survivor.
// Idempotent: rejoining an alive node transfers nothing.
func (s *Server) handleRejoin(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, jim.CodeBadInput, "server is not running in cluster mode")
		return
	}
	var req rejoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, jim.CodeBadInput, "decoding request: %v", err)
		return
	}
	if req.Node == "" {
		writeError(w, jim.CodeBadInput, "missing node")
		return
	}
	if req.Node == c.self.ID {
		writeError(w, jim.CodeBadInput, "cannot rejoin self (%s) via a peer endpoint", c.self.ID)
		return
	}
	old := c.membership.Load()
	node, ok := old.Node(req.Node)
	if !ok {
		writeError(w, jim.CodeBadInput, "unknown node %q", req.Node)
		return
	}
	next, err := old.Rejoin(req.Node)
	if err != nil {
		writeError(w, jim.CodeBadInput, "%v", err)
		return
	}
	if next == old {
		writeJSON(w, http.StatusOK, rejoinResponse{Node: req.Node, Synced: true, Alive: old.Alive()})
		return
	}
	collect := func(view *cluster.Membership) []handoff {
		var hand []handoff
		s.sessions.forEach(func(id string, ls *liveSession) {
			if view.OwnerID(id) == req.Node {
				hand = append(hand, handoff{id, ls})
			}
		})
		return hand
	}
	hand := collect(next)
	if len(hand) > 0 {
		if node.Repl == "" {
			writeError(w, jim.CodeBadInput, "node %q has no repl address to transfer %d sessions through", req.Node, len(hand))
			return
		}
		if err := s.shipSessionsTo(r.Context(), node, hand); err != nil {
			// The range did not provably arrive; keep serving it and
			// leave routing alone.
			writeError(w, jim.CodeInternal, "transferring %d sessions to %q: %v", len(hand), req.Node, err)
			return
		}
	}
	var m *cluster.Membership
	for {
		cur := c.membership.Load()
		nv, err := cur.Rejoin(req.Node)
		if err != nil {
			writeError(w, jim.CodeBadInput, "%v", err)
			return
		}
		if nv == cur || c.membership.CompareAndSwap(cur, nv) {
			m = nv
			break
		}
	}
	keep := false
	if f, ok := m.FollowerOf(req.Node); ok && f.ID == c.self.ID {
		keep = true
	}
	for _, h := range hand {
		s.releaseSession(h.id, h.ls, keep)
	}
	// A create could have landed in the returning range between the
	// transfer and the view flip; the flip stops further ones, so one
	// more pass drains the window.
	if extra := collect(m); len(extra) > 0 {
		if err := s.shipSessionsTo(r.Context(), node, extra); err != nil {
			c.logf("cluster: rejoin %s: late transfer of %d sessions failed: %v", req.Node, len(extra), err)
		} else {
			for _, h := range extra {
				s.releaseSession(h.id, h.ls, keep)
			}
			hand = append(hand, extra...)
		}
	}
	s.retargetShipper(m)
	if c.detector != nil {
		// Re-grant the returning node's lease: its last heartbeat is
		// ancient history.
		c.detector.Heartbeat(req.Node)
	}
	c.logf("cluster: %s rejoined, handed back %d sessions", req.Node, len(hand))
	writeJSON(w, http.StatusOK, rejoinResponse{
		Node:        req.Node,
		Transferred: len(hand),
		Synced:      true,
		Alive:       m.Alive(),
	})
}

type rebalanceResponse struct {
	Sessions int            `json:"sessions"`
	Moved    int            `json:"moved"`
	Targets  map[string]int `json:"targets,omitempty"`
	Synced   bool           `json:"synced"`
}

// handleRebalance ships every live session whose ring owner under the
// current view is another node to that owner through the drain path,
// then releases it locally — the planned movement step after a
// peer-set change (run it on each pre-existing node after restarting
// the cluster with the new peer spec). The receiving owner absorbs
// shipped state for its own range directly into its live table (see
// ApplySnapshot), so no promotion follows. With no peer-set change
// the call is a no-op.
func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, jim.CodeBadInput, "server is not running in cluster mode")
		return
	}
	m := c.membership.Load()
	total := 0
	byOwner := map[string][]handoff{}
	s.sessions.forEach(func(id string, ls *liveSession) {
		total++
		if own := m.OwnerID(id); own != c.self.ID {
			byOwner[own] = append(byOwner[own], handoff{id, ls})
		}
	})
	moved := 0
	synced := true
	targets := map[string]int{}
	for own, hs := range byOwner {
		n, ok := m.Node(own)
		if !ok || n.Repl == "" {
			c.logf("cluster: rebalance: %s has no repl address, keeping %d sessions", own, len(hs))
			synced = false
			continue
		}
		if err := s.shipSessionsTo(r.Context(), n, hs); err != nil {
			// Not provably delivered: keep serving these rather than
			// strand them.
			c.logf("cluster: rebalance: transfer of %d sessions to %s failed: %v", len(hs), own, err)
			synced = false
			continue
		}
		keep := false
		if f, ok := m.FollowerOf(own); ok && f.ID == c.self.ID {
			keep = true
		}
		for _, h := range hs {
			s.releaseSession(h.id, h.ls, keep)
		}
		moved += len(hs)
		targets[own] = len(hs)
	}
	if moved > 0 {
		c.logf("cluster: rebalance moved %d of %d sessions", moved, total)
	}
	writeJSON(w, http.StatusOK, rebalanceResponse{Sessions: total, Moved: moved, Targets: targets, Synced: synced})
}

// rejoinProgress is the rejoin state machine surfaced in
// GET /v1/cluster while a restarted node reclaims its range.
type rejoinProgress struct {
	Node      string `json:"node"`
	Phase     string `json:"phase"` // syncing | reclaiming | done | failed
	Reclaimed int    `json:"reclaimed_sessions,omitempty"`
	Error     string `json:"error,omitempty"`
}

// RejoinReport summarizes a RejoinCluster call.
type RejoinReport struct {
	// Rejoined is false when no peer marked this node failed — a
	// fresh cluster, or a restart quicker than the lease.
	Rejoined bool `json:"rejoined"`
	// Holder is the node that held this node's range.
	Holder string `json:"holder,omitempty"`
	// Reclaimed counts sessions adopted back from the holder.
	Reclaimed int `json:"reclaimed_sessions"`
	// PeersNotified counts survivors whose views converged.
	PeersNotified int `json:"peers_notified"`
}

// RejoinCluster is the restarted node's side of dead-node rejoin. It
// asks the peers whether any of them marked this node failed; if so
// it adopts that view of the world (marking ITSELF failed, so the
// incoming range lands in the replica set instead of colliding with
// stale restored state), drops its stale local copy of the range,
// asks the promoted holder to transfer the range back, reclaims it
// with a Rejoin view flip plus replica adoption, and finally
// broadcasts the rejoin to the remaining survivors. Call it after
// EnableCluster with the repl listener already serving — the holder
// ships the range into it. Safe to call when nothing is wrong: it
// returns a zero report.
func (s *Server) RejoinCluster(ctx context.Context) (*RejoinReport, error) {
	c := s.cluster
	if c == nil {
		return nil, errors.New("server: not in cluster mode")
	}
	rep := &RejoinReport{}
	m := c.membership.Load()
	var remoteFailed map[string]string
	for _, n := range m.Members() {
		if n.ID == c.self.ID {
			continue
		}
		view, err := c.fetchView(ctx, n)
		if err != nil {
			continue
		}
		if _, dead := view.Failed[c.self.ID]; dead {
			remoteFailed = view.Failed
			break
		}
	}
	if remoteFailed == nil {
		return rep, nil
	}
	c.rejoinState.Store(&rejoinProgress{Node: c.self.ID, Phase: "syncing"})
	fail := func(err error) (*RejoinReport, error) {
		c.rejoinState.Store(&rejoinProgress{Node: c.self.ID, Phase: "failed", Error: err.Error()})
		return nil, err
	}
	// Adopt the survivors' view — with ourselves failed in it, the
	// incoming range is applied as replicas, not rejected as stale
	// shadowing of the sessions we restored from disk.
	for {
		cur := c.membership.Load()
		nv, err := cur.ImportFailed(remoteFailed)
		if err != nil {
			return fail(fmt.Errorf("server: rejoin: %w", err))
		}
		if nv == cur || c.membership.CompareAndSwap(cur, nv) {
			break
		}
	}
	// Our restored copy of the range is stale misinformation — the
	// promoted holder has the authoritative state (including deletes
	// that happened while we were down). Drop table and disk copies
	// before the fresh range arrives.
	s.sessions.forEach(func(id string, ls *liveSession) {
		if s.ownsID(id) {
			return
		}
		s.sessions.demote(id)
		if s.durable {
			if err := s.cfg.Store.Compact(id); err != nil {
				s.persist.errors.Add(1)
			}
		}
	})
	// Chase our failed entry to the live node actually holding the
	// range today (the promoted follower may itself have died).
	holderID := remoteFailed[c.self.ID]
	for i := 0; i <= len(remoteFailed); i++ {
		next, dead := remoteFailed[holderID]
		if !dead {
			break
		}
		holderID = next
	}
	holder, ok := c.membership.Load().Node(holderID)
	if !ok || holder.HTTP == "" {
		return fail(fmt.Errorf("server: rejoin: no reachable holder for our range (chain ends at %q)", holderID))
	}
	rep.Holder = holderID
	if err := c.postRejoin(ctx, holder, c.self.ID); err != nil {
		return fail(fmt.Errorf("server: rejoin via %s: %w", holderID, err))
	}
	rep.PeersNotified++
	c.rejoinState.Store(&rejoinProgress{Node: c.self.ID, Phase: "reclaiming"})
	var nv *cluster.Membership
	for {
		cur := c.membership.Load()
		next, err := cur.Rejoin(c.self.ID)
		if err != nil {
			return fail(fmt.Errorf("server: rejoin: %w", err))
		}
		if next == cur || c.membership.CompareAndSwap(cur, next) {
			nv = next
			break
		}
	}
	rep.Reclaimed = s.adoptReplicas(nv)
	s.retargetShipper(nv)
	// Converge the remaining survivors; their handlers transfer any
	// strays of our range and flip their views.
	failed := nv.Failed()
	for _, n := range nv.Members() {
		if n.ID == c.self.ID || n.ID == holderID {
			continue
		}
		if _, dead := failed[n.ID]; dead {
			continue
		}
		if err := c.postRejoin(ctx, n, c.self.ID); err != nil {
			c.logf("cluster: rejoin broadcast to %s: %v", n.ID, err)
			continue
		}
		rep.PeersNotified++
	}
	rep.Rejoined = true
	c.rejoinState.Store(&rejoinProgress{Node: c.self.ID, Phase: "done", Reclaimed: rep.Reclaimed})
	c.logf("cluster: rejoined via %s, reclaimed %d sessions", holderID, rep.Reclaimed)
	return rep, nil
}

// fetchView reads a peer's GET /v1/cluster membership view.
func (c *clusterState) fetchView(ctx context.Context, n cluster.Node) (*clusterResponse, error) {
	rctx, cancel := context.WithTimeout(ctx, 2*c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, "http://"+n.HTTP+"/v1/cluster", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET /v1/cluster on %s: HTTP %d", n.ID, resp.StatusCode)
	}
	var view clusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, err
	}
	return &view, nil
}

// postRejoin drives a peer's POST /v1/cluster/rejoin for node id.
func (c *clusterState) postRejoin(ctx context.Context, n cluster.Node, id string) error {
	body, err := json.Marshal(rejoinRequest{Node: id})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+n.HTTP+"/v1/cluster/rejoin", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/cluster/rejoin on %s: HTTP %d: %s", n.ID, resp.StatusCode, msg)
	}
	return nil
}

type clusterResponse struct {
	Self          string            `json:"self"`
	Proxy         bool              `json:"proxy"`
	Nodes         []cluster.Node    `json:"nodes"`
	Alive         []string          `json:"alive"`
	Failed        map[string]string `json:"failed"`
	OwnedSessions int               `json:"owned_sessions"`
	Replicas      int               `json:"replicas"`
	// LeaseMS is the failure-detector lease; 0 when the detector is
	// off (operator-driven failover only).
	LeaseMS float64 `json:"lease_ms,omitempty"`
	// Suspected maps each currently suspected peer to how many
	// seconds it has been under (not yet quorum-confirmed) suspicion.
	Suspected map[string]float64 `json:"suspected,omitempty"`
	// Rejoin reports this node's rejoin-in-flight state, if any.
	Rejoin *rejoinProgress `json:"rejoin,omitempty"`
}

// handleCluster serves the membership view: topology, who is alive,
// and where failed ranges went.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, jim.CodeBadInput, "server is not running in cluster mode")
		return
	}
	m := c.membership.Load()
	owned := 0
	s.sessions.forEach(func(string, *liveSession) { owned++ })
	c.repMu.Lock()
	nrep := len(c.replicas)
	c.repMu.Unlock()
	resp := clusterResponse{
		Self:          c.self.ID,
		Proxy:         c.proxy,
		Nodes:         m.Members(),
		Alive:         m.Alive(),
		Failed:        m.Failed(),
		OwnedSessions: owned,
		Replicas:      nrep,
		Rejoin:        c.rejoinState.Load(),
	}
	if c.lease > 0 {
		resp.LeaseMS = float64(c.lease) / float64(time.Millisecond)
	}
	if c.detector != nil {
		if sus := c.detector.Suspicions(); len(sus) > 0 {
			resp.Suspected = make(map[string]float64, len(sus))
			for id, since := range sus {
				resp.Suspected[id] = s.now().Sub(since).Seconds()
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthResponse is GET /healthz: node identity, role counts,
// replication lag, and restore status — everything a failover
// detector or load balancer needs in one unauthenticated probe.
type healthResponse struct {
	Status      string      `json:"status"`
	Cluster     bool        `json:"cluster"`
	Node        string      `json:"node,omitempty"`
	Role        *roleHealth `json:"role,omitempty"`
	Replication *replHealth `json:"replication,omitempty"`
	Store       storeStats  `json:"store"`
	UptimeSecs  float64     `json:"uptime_seconds"`
	Started     time.Time   `json:"started"`
}

type roleHealth struct {
	// OwnedSessions counts live sessions this node answers for;
	// Replicas counts sessions it follows for other owners.
	OwnedSessions    int   `json:"owned_sessions"`
	Replicas         int   `json:"replicas"`
	PromotedSessions int64 `json:"promoted_sessions"`
}

type replHealth struct {
	// Ship is the outbound stream to our follower (nil when this node
	// has nobody to ship to). Ship.QueuedEvents is the replication lag
	// in events.
	Ship             *cluster.ShipStats `json:"ship,omitempty"`
	AppliedEvents    int64              `json:"applied_events"`
	AppliedSnapshots int64              `json:"applied_snapshots"`
	RejectedMessages int64              `json:"rejected_messages"`
	// Synced is present only on ?sync=1 probes: true when the follower
	// acknowledged everything shipped before the probe.
	Synced *bool `json:"synced,omitempty"`
}

// handleHealthz serves the liveness/role probe. ?sync=1 additionally
// runs a replication barrier: the response reports whether the
// follower acknowledged the whole stream (the loadtest uses this to
// bound replication lag before killing a node).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:     "ok",
		Store:      s.storeStats(),
		Started:    s.metrics.startedAt,
		UptimeSecs: s.now().Sub(s.metrics.startedAt).Seconds(),
	}
	if c := s.cluster; c != nil {
		resp.Cluster = true
		resp.Node = c.self.ID
		owned := 0
		s.sessions.forEach(func(string, *liveSession) { owned++ })
		c.repMu.Lock()
		nrep := len(c.replicas)
		c.repMu.Unlock()
		resp.Role = &roleHealth{
			OwnedSessions:    owned,
			Replicas:         nrep,
			PromotedSessions: c.promoted.Load(),
		}
		rh := &replHealth{
			AppliedEvents:    c.applied.Load(),
			AppliedSnapshots: c.appliedSnaps.Load(),
			RejectedMessages: c.rejected.Load(),
		}
		if c.shipper != nil {
			st := c.shipper.Stats()
			rh.Ship = &st
			if r.URL.Query().Get("sync") != "" {
				ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
				defer cancel()
				ok := c.shipper.Sync(ctx) == nil
				rh.Synced = &ok
			}
		}
		resp.Replication = rh
	}
	writeJSON(w, http.StatusOK, resp)
}
