package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	jim "repro"
	"repro/internal/cluster"
	"repro/internal/store"
)

// This file is the server side of internal/cluster: session ownership
// (consistent-hash routing with 307 redirects or transparent
// proxying), the shipping hooks that stream committed WAL frames to
// the designated follower, the replica set a follower keeps warm, and
// the promotion/drain endpoints that move ownership on node death or
// planned maintenance. A server without EnableCluster behaves exactly
// as before — every hook is nil-guarded.

// ClusterOptions configures EnableCluster.
type ClusterOptions struct {
	// Self is this node's id; it must appear in Peers.
	Self string
	// Peers is the full static peer set (this node included).
	Peers []cluster.Node
	// Vnodes is the ring's virtual-node count; <= 0 means
	// cluster.DefaultVnodes.
	Vnodes int
	// Proxy transparently proxies non-owned requests to the owner
	// instead of answering 307.
	Proxy bool
	// ReplBuffer is the shipper queue capacity; <= 0 means default.
	ReplBuffer int
	Logf       func(format string, args ...any)
}

// clusterState hangs off Server when cluster mode is on.
type clusterState struct {
	self       cluster.Node
	proxy      bool
	logf       func(format string, args ...any)
	membership atomic.Pointer[cluster.Membership]
	// shipper streams our sessions to the designated follower; nil
	// when no peer can receive replication.
	shipper *cluster.Shipper
	// proxies caches one ReverseProxy per peer (proxy mode).
	proxies sync.Map

	// replicas holds the sessions we follow for other owners — a
	// separate map, NOT the main table, so replicas never appear in
	// listings, never count against the session cap, and never get
	// swept. repMu guards the map and every replica's seq.
	repMu    sync.Mutex
	replicas map[string]*replica

	promoted     atomic.Int64 // sessions adopted via promotion
	applied      atomic.Int64 // replication events applied
	appliedSnaps atomic.Int64 // replication snapshots applied
	rejected     atomic.Int64 // replication messages refused
}

// replica is one followed session plus the last replication sequence
// applied to it (the dedup watermark for resync replays).
type replica struct {
	ls  *liveSession
	seq uint64
}

// EnableCluster switches the server into cluster mode. Call it after
// NewWith/Restore and before serving traffic: it is not safe to
// enable on a server already handling requests.
func (s *Server) EnableCluster(opts ClusterOptions) error {
	if s.cluster != nil {
		return errors.New("server: cluster mode already enabled")
	}
	m, err := cluster.NewMembership(opts.Peers, opts.Vnodes)
	if err != nil {
		return err
	}
	self, ok := m.Node(opts.Self)
	if !ok {
		return fmt.Errorf("server: node %q is not in the peer set", opts.Self)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &clusterState{self: self, proxy: opts.Proxy, logf: logf, replicas: map[string]*replica{}}
	c.membership.Store(m)
	s.cluster = c
	if f, ok := m.FollowerOf(self.ID); ok && f.Repl != "" {
		c.shipper = cluster.NewShipper(cluster.ShipperOptions{
			Self:   self.ID,
			Target: f.Repl,
			Resync: s.resyncShip,
			Logf:   logf,
			Buffer: opts.ReplBuffer,
		})
	}
	return nil
}

// CloseCluster stops the replication shipper. Safe on any server.
func (s *Server) CloseCluster() {
	if s.cluster != nil && s.cluster.shipper != nil {
		s.cluster.shipper.Close()
	}
}

// shipperFor returns the replication shipper, nil when not shipping.
func (s *Server) shipperFor() *cluster.Shipper {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.shipper
}

// ownsID reports whether this node owns the session id. Single-node
// servers own everything.
func (s *Server) ownsID(id string) bool {
	if s.cluster == nil {
		return true
	}
	return s.cluster.membership.Load().OwnerID(id) == s.cluster.self.ID
}

// allocID draws fresh session ids until one lands in this node's hash
// range, so every node allocates from a disjoint id space and a create
// never needs forwarding. Expected tries = node count.
func (s *Server) allocID() string {
	for {
		id := fmt.Sprintf("s%04d", s.nextID.Add(1))
		if s.ownsID(id) {
			return id
		}
	}
}

// routeAway answers a request for a session this node does not own:
// a transparent proxy to the owner in proxy mode, otherwise a 307
// whose Location and X-Jim-Owner headers carry the owner, with the
// structured not_owner envelope as the body.
func (s *Server) routeAway(w http.ResponseWriter, r *http.Request, id string) {
	c := s.cluster
	owner := c.membership.Load().Owner(id)
	if owner.ID == "" || owner.HTTP == "" {
		writeError(w, jim.CodeInternal, "no reachable owner for session %q", id)
		return
	}
	if c.proxy {
		c.proxyTo(owner).ServeHTTP(w, r)
		return
	}
	w.Header().Set("X-Jim-Owner", owner.ID+"="+owner.HTTP)
	w.Header().Set("Location", "http://"+owner.HTTP+r.URL.RequestURI())
	writeError(w, jim.CodeNotOwner, "session %q is owned by %s at %s", id, owner.ID, owner.HTTP)
}

// checkWireOwner is routeAway for the wire protocol: the NOT_OWNER
// error frame's message carries "nodeID=address" (wire address when
// the owner has one, HTTP otherwise).
func (s *Server) checkWireOwner(id string) error {
	if s.ownsID(id) {
		return nil
	}
	owner := s.cluster.membership.Load().Owner(id)
	addr := owner.Wire
	if addr == "" {
		addr = owner.HTTP
	}
	return &jim.Error{Code: jim.CodeNotOwner, Message: owner.ID + "=" + addr}
}

func (c *clusterState) proxyTo(n cluster.Node) http.Handler {
	if p, ok := c.proxies.Load(n.ID); ok {
		return p.(http.Handler)
	}
	p := httputil.NewSingleHostReverseProxy(&url.URL{Scheme: "http", Host: n.HTTP})
	p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		writeError(w, jim.CodeInternal, "proxying to %s: %v", n.ID, err)
	}
	actual, _ := c.proxies.LoadOrStore(n.ID, p)
	return actual.(http.Handler)
}

// resyncShip is the shipper's Resync callback: on every (re)connect —
// and after a queue overflow — ship a current snapshot of every live
// session. Runs on the shipper goroutine; buildSnapshot under
// RLock+pickMu is exactly the snapshotLive capture discipline, and
// Seq is read under the same locks, so the snapshot and its watermark
// agree.
func (s *Server) resyncShip(ship func(id string, snap store.Snapshot)) {
	s.sessions.forEach(func(id string, ls *liveSession) {
		ls.mu.RLock()
		if ls.deleted {
			ls.mu.RUnlock()
			return
		}
		ls.pickMu.Lock()
		snap, err := buildSnapshot(ls)
		if err == nil {
			snap.Seq = ls.replSeq.Load()
		}
		ls.pickMu.Unlock()
		ls.mu.RUnlock()
		if err != nil {
			s.cluster.logf("cluster: resync snapshot %s: %v", id, err)
			return
		}
		ship(id, snap)
	})
}

// ApplySnapshot implements cluster.Applier: rebuild the shipped
// session through the exact crash-recovery path and (re)place it in
// the replica set. Snapshots always replace — within a stream they
// are captured from current owner state and FIFO-ordered, and a fresh
// stream (owner restart, new replication epoch) must reset the
// watermark rather than be refused by a stale one.
func (s *Server) ApplySnapshot(id string, snap *store.Snapshot) error {
	c := s.cluster
	if c == nil {
		return errors.New("server: not in cluster mode")
	}
	if _, live := s.sessions.get(id); live && s.ownsID(id) {
		// We already own this session (it was adopted); late frames
		// from its dead ex-owner's stream must not shadow it.
		c.rejected.Add(1)
		return nil
	}
	ls, err := s.rebuild(store.Saved{ID: id, Snapshot: snap})
	if err != nil {
		c.rejected.Add(1)
		return fmt.Errorf("rebuilding replica %q: %w", id, err)
	}
	ls.replSeq.Store(snap.Seq)
	c.repMu.Lock()
	c.replicas[id] = &replica{ls: ls, seq: snap.Seq}
	c.repMu.Unlock()
	c.appliedSnaps.Add(1)
	return nil
}

// ApplyEvent implements cluster.Applier: replay one shipped WAL event
// into the replica. Events at or below the watermark are resync
// replays and drop silently; an event for an unknown session is
// refused (its snapshot has not arrived — the shipper's next resync
// heals it).
func (s *Server) ApplyEvent(id string, ev store.Event) error {
	c := s.cluster
	if c == nil {
		return errors.New("server: not in cluster mode")
	}
	c.repMu.Lock()
	rep := c.replicas[id]
	if rep == nil {
		c.repMu.Unlock()
		if _, live := s.sessions.get(id); live && s.ownsID(id) {
			c.rejected.Add(1)
			return nil
		}
		c.rejected.Add(1)
		return fmt.Errorf("no replica %q (event before snapshot; awaiting resync)", id)
	}
	if ev.Seq <= rep.seq {
		c.repMu.Unlock()
		return nil
	}
	ls := rep.ls
	c.repMu.Unlock()
	ls.mu.Lock()
	err := replayEvent(ls.sess, ev)
	ls.mu.Unlock()
	if err != nil {
		c.rejected.Add(1)
		return fmt.Errorf("applying event seq %d to replica %q: %w", ev.Seq, id, err)
	}
	c.repMu.Lock()
	if cur := c.replicas[id]; cur == rep {
		rep.seq = ev.Seq
	}
	c.repMu.Unlock()
	ls.replSeq.Store(ev.Seq)
	c.applied.Add(1)
	return nil
}

// DropReplica implements cluster.Applier: the owner deleted the
// session.
func (s *Server) DropReplica(id string) error {
	c := s.cluster
	if c == nil {
		return errors.New("server: not in cluster mode")
	}
	c.repMu.Lock()
	delete(c.replicas, id)
	c.repMu.Unlock()
	return nil
}

type promoteRequest struct {
	// Node is the dead node whose sessions should fail over.
	Node string `json:"node"`
}

type promoteResponse struct {
	Node            string   `json:"node"`
	PromotedTo      string   `json:"promoted_to"`
	AdoptedSessions int      `json:"adopted_sessions"`
	Alive           []string `json:"alive"`
}

// handlePromote marks a peer failed in this node's membership view
// and adopts every replica the new view assigns to us — the failover
// step an operator (or the loadtest harness) drives on each survivor
// after detecting a death. Idempotent: re-promoting an already-failed
// node adopts nothing new.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, jim.CodeBadInput, "server is not running in cluster mode")
		return
	}
	var req promoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, jim.CodeBadInput, "decoding request: %v", err)
		return
	}
	if req.Node == "" {
		writeError(w, jim.CodeBadInput, "missing node")
		return
	}
	if req.Node == c.self.ID {
		writeError(w, jim.CodeBadInput, "cannot mark self (%s) failed", c.self.ID)
		return
	}
	var m *cluster.Membership
	for {
		old := c.membership.Load()
		next, err := old.Fail(req.Node)
		if err != nil {
			writeError(w, jim.CodeBadInput, "%v", err)
			return
		}
		if next == old || c.membership.CompareAndSwap(old, next) {
			m = next
			break
		}
	}
	adopted := s.adoptReplicas(m)
	// The failure may have changed who our follower is; retarget after
	// adoption so the retarget resync covers the adopted sessions too.
	if c.shipper != nil {
		if f, ok := m.FollowerOf(c.self.ID); ok && f.Repl != "" {
			c.shipper.SetTarget(f.Repl)
		} else {
			c.shipper.SetTarget("")
		}
	}
	c.logf("cluster: %s marked failed, adopted %d sessions", req.Node, adopted)
	writeJSON(w, http.StatusOK, promoteResponse{
		Node:            req.Node,
		PromotedTo:      m.Failed()[req.Node],
		AdoptedSessions: adopted,
		Alive:           m.Alive(),
	})
}

// adoptReplicas moves every replica the membership view m assigns to
// this node out of the replica set and into the live table, advances
// the id counter past the adopted ids, and re-protects each adoptee
// with a local snapshot (which also ships it to OUR follower).
func (s *Server) adoptReplicas(m *cluster.Membership) int {
	c := s.cluster
	type adoptee struct {
		id string
		ls *liveSession
	}
	var adopt []adoptee
	c.repMu.Lock()
	for id, rep := range c.replicas {
		if m.OwnerID(id) == c.self.ID {
			adopt = append(adopt, adoptee{id, rep.ls})
			delete(c.replicas, id)
		}
	}
	c.repMu.Unlock()
	var maxID int64
	for _, a := range adopt {
		a.ls.touch(s.now())
		s.sessions.putRestored(a.id, a.ls)
		if n, ok := numericID(a.id); ok && n > maxID {
			maxID = n
		}
	}
	for {
		cur := s.nextID.Load()
		if maxID <= cur || s.nextID.CompareAndSwap(cur, maxID) {
			break
		}
	}
	c.promoted.Add(int64(len(adopt)))
	if s.durable || c.shipper != nil {
		for _, a := range adopt {
			if err := s.snapshotSession(a.id, a.ls); err != nil {
				s.persist.errors.Add(1)
			}
		}
	}
	return len(adopt)
}

type drainResponse struct {
	Sessions    int  `json:"sessions"`
	Snapshotted int  `json:"snapshotted"`
	Synced      bool `json:"synced"`
}

// handleDrain prepares this node for planned removal: every live
// session is folded into a fresh snapshot (shipped to the follower),
// then the replication stream is synced so the follower has
// acknowledged everything. After a drain returns synced=true, the
// operator promotes this node's range on the survivors and stops the
// process — the TTL-demotion flavored counterpart of kill -9.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, jim.CodeBadInput, "server is not running in cluster mode")
		return
	}
	total, snapped := 0, 0
	s.sessions.forEach(func(id string, ls *liveSession) {
		total++
		if err := s.snapshotSession(id, ls); err != nil {
			s.persist.errors.Add(1)
			return
		}
		snapped++
	})
	synced := false
	if c.shipper != nil {
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		defer cancel()
		synced = c.shipper.Sync(ctx) == nil
	}
	writeJSON(w, http.StatusOK, drainResponse{Sessions: total, Snapshotted: snapped, Synced: synced})
}

type clusterResponse struct {
	Self          string            `json:"self"`
	Proxy         bool              `json:"proxy"`
	Nodes         []cluster.Node    `json:"nodes"`
	Alive         []string          `json:"alive"`
	Failed        map[string]string `json:"failed"`
	OwnedSessions int               `json:"owned_sessions"`
	Replicas      int               `json:"replicas"`
}

// handleCluster serves the membership view: topology, who is alive,
// and where failed ranges went.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, jim.CodeBadInput, "server is not running in cluster mode")
		return
	}
	m := c.membership.Load()
	owned := 0
	s.sessions.forEach(func(string, *liveSession) { owned++ })
	c.repMu.Lock()
	nrep := len(c.replicas)
	c.repMu.Unlock()
	writeJSON(w, http.StatusOK, clusterResponse{
		Self:          c.self.ID,
		Proxy:         c.proxy,
		Nodes:         m.Members(),
		Alive:         m.Alive(),
		Failed:        m.Failed(),
		OwnedSessions: owned,
		Replicas:      nrep,
	})
}

// healthResponse is GET /healthz: node identity, role counts,
// replication lag, and restore status — everything a failover
// detector or load balancer needs in one unauthenticated probe.
type healthResponse struct {
	Status      string      `json:"status"`
	Cluster     bool        `json:"cluster"`
	Node        string      `json:"node,omitempty"`
	Role        *roleHealth `json:"role,omitempty"`
	Replication *replHealth `json:"replication,omitempty"`
	Store       storeStats  `json:"store"`
	UptimeSecs  float64     `json:"uptime_seconds"`
	Started     time.Time   `json:"started"`
}

type roleHealth struct {
	// OwnedSessions counts live sessions this node answers for;
	// Replicas counts sessions it follows for other owners.
	OwnedSessions    int   `json:"owned_sessions"`
	Replicas         int   `json:"replicas"`
	PromotedSessions int64 `json:"promoted_sessions"`
}

type replHealth struct {
	// Ship is the outbound stream to our follower (nil when this node
	// has nobody to ship to). Ship.QueuedEvents is the replication lag
	// in events.
	Ship             *cluster.ShipStats `json:"ship,omitempty"`
	AppliedEvents    int64              `json:"applied_events"`
	AppliedSnapshots int64              `json:"applied_snapshots"`
	RejectedMessages int64              `json:"rejected_messages"`
	// Synced is present only on ?sync=1 probes: true when the follower
	// acknowledged everything shipped before the probe.
	Synced *bool `json:"synced,omitempty"`
}

// handleHealthz serves the liveness/role probe. ?sync=1 additionally
// runs a replication barrier: the response reports whether the
// follower acknowledged the whole stream (the loadtest uses this to
// bound replication lag before killing a node).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:     "ok",
		Store:      s.storeStats(),
		Started:    s.metrics.startedAt,
		UptimeSecs: s.now().Sub(s.metrics.startedAt).Seconds(),
	}
	if c := s.cluster; c != nil {
		resp.Cluster = true
		resp.Node = c.self.ID
		owned := 0
		s.sessions.forEach(func(string, *liveSession) { owned++ })
		c.repMu.Lock()
		nrep := len(c.replicas)
		c.repMu.Unlock()
		resp.Role = &roleHealth{
			OwnedSessions:    owned,
			Replicas:         nrep,
			PromotedSessions: c.promoted.Load(),
		}
		rh := &replHealth{
			AppliedEvents:    c.applied.Load(),
			AppliedSnapshots: c.appliedSnaps.Load(),
			RejectedMessages: c.rejected.Load(),
		}
		if c.shipper != nil {
			st := c.shipper.Stats()
			rh.Ship = &st
			if r.URL.Query().Get("sync") != "" {
				ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
				defer cancel()
				ok := c.shipper.Sync(ctx) == nil
				rh.Synced = &ok
			}
		}
		resp.Replication = rh
	}
	writeJSON(w, http.StatusOK, resp)
}
