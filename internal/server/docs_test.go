package server_test

import (
	"os"
	"regexp"
	"sort"
	"testing"

	"repro/internal/server"
)

// TestAPIDocsMatchRoutes holds API.md to the mux: every endpoint
// heading in the reference must name a registered /v1 route, and every
// registered route must have a heading — so the document cannot
// silently rot as the wire contract grows. Endpoint headings look like
//
//	### `POST /v1/sessions` — create a session
//
// (an optional illustrative query string after the path is ignored).
func TestAPIDocsMatchRoutes(t *testing.T) {
	data, err := os.ReadFile("../../API.md")
	if err != nil {
		t.Fatal(err)
	}
	heading := regexp.MustCompile("(?m)^###+ `([A-Z]+) (/v1[^`?]*)[^`]*`")
	documented := map[string]bool{}
	for _, m := range heading.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]+" "+m[2]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no endpoint headings found in API.md — did the heading format change?")
	}
	registered := map[string]bool{}
	for _, rt := range server.New().Routes() {
		registered[rt] = true
	}
	var missing, stale []string
	for rt := range registered {
		if !documented[rt] {
			missing = append(missing, rt)
		}
	}
	for rt := range documented {
		if !registered[rt] {
			stale = append(stale, rt)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	for _, rt := range missing {
		t.Errorf("route %q is registered but undocumented in API.md", rt)
	}
	for _, rt := range stale {
		t.Errorf("API.md documents %q, which is not a registered route", rt)
	}
}
