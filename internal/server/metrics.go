package server

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyHist is a fixed-size log-scale histogram of request
// durations. Bucket i covers (2^(i-1), 2^i] microseconds, so quantile
// estimates are exact to within a factor of two — plenty for a /stats
// panel — while recording stays allocation-free and a single atomic
// add per request.
const histBuckets = 40

type latencyHist struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sumUS  atomic.Int64
}

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

func (h *latencyHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	h.sumUS.Add(d.Microseconds())
}

// quantile returns the upper bound (in milliseconds) of the bucket
// containing the p-th percentile observation, or 0 with no data.
func (h *latencyHist) quantile(p float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(p*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return float64(int64(1)<<uint(i)) / 1000 // 2^i µs in ms
		}
	}
	return float64(int64(1)<<uint(histBuckets-1)) / 1000
}

func (h *latencyHist) meanMS() float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	return float64(h.sumUS.Load()) / float64(total) / 1000
}

// endpointMetrics aggregates one route pattern.
type endpointMetrics struct {
	count  atomic.Int64
	errors atomic.Int64 // responses with status >= 400
	hist   latencyHist
}

// metrics is the server-wide instrumentation: per-endpoint latency
// plus label and ingestion throughput. Endpoint slots live in a
// sync.Map so the steady state (slot exists) is a lock-free load and
// everything after is atomics — no global serialization point on the
// request path.
type metrics struct {
	endpoints      sync.Map     // pattern string -> *endpointMetrics
	labels         atomic.Int64 // successful label applications
	appends        atomic.Int64 // successful append batches
	tuplesAppended atomic.Int64 // tuples streamed in via append
	startedAt      time.Time
}

func newMetrics(now time.Time) *metrics {
	return &metrics{startedAt: now}
}

func (m *metrics) endpoint(pattern string) *endpointMetrics {
	if em, ok := m.endpoints.Load(pattern); ok {
		return em.(*endpointMetrics)
	}
	em, _ := m.endpoints.LoadOrStore(pattern, &endpointMetrics{})
	return em.(*endpointMetrics)
}

// statusRecorder captures the response status for error accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux, recording count, errors, and latency per
// matched route pattern (r.Pattern is set by ServeMux on match).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		pattern := r.Pattern
		if pattern == "" {
			pattern = "unmatched"
		}
		em := s.metrics.endpoint(pattern)
		em.count.Add(1)
		if rec.status >= 400 {
			em.errors.Add(1)
		}
		em.hist.observe(s.now().Sub(start))
	})
}

type endpointStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

type statsResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Sessions      sessionStats             `json:"sessions"`
	Labels        labelStats               `json:"labels"`
	Ingest        ingestStats              `json:"ingest"`
	Store         storeStats               `json:"store"`
	Endpoints     map[string]endpointStats `json:"endpoints"`
	EndpointOrder []string                 `json:"endpoint_order"`
}

type sessionStats struct {
	Active   int64 `json:"active"`
	Created  int64 `json:"created"`
	Restored int64 `json:"restored"`
	Deleted  int64 `json:"deleted"`
	Evicted  int64 `json:"evicted"`
	Rejected int64 `json:"rejected"`
	Max      int   `json:"max,omitempty"`
}

// storeStats is the durability block of /stats and GET /v1/sessions:
// which backend holds the sessions, how many live sessions were
// replayed from it at startup, how much WAL/snapshot traffic it has
// absorbed, and how stale the newest snapshot is.
type storeStats struct {
	Backend          string `json:"backend"`
	RestoredSessions int64  `json:"restored_sessions"`
	EventsLogged     int64  `json:"events_logged"`
	Snapshots        int64  `json:"snapshots"`
	PersistErrors    int64  `json:"persist_errors"`
	// LastSnapshotAgeSeconds is the age of the most recent snapshot
	// write; -1 when no snapshot has been written this process.
	LastSnapshotAgeSeconds float64 `json:"last_snapshot_age_seconds"`
}

// storeStats assembles the durability block.
func (s *Server) storeStats() storeStats {
	st := storeStats{
		Backend:                s.cfg.Store.Name(),
		RestoredSessions:       s.sessions.restored.Load(),
		EventsLogged:           s.persist.events.Load(),
		Snapshots:              s.persist.snapshots.Load(),
		PersistErrors:          s.persist.errors.Load(),
		LastSnapshotAgeSeconds: -1,
	}
	if last := s.persist.lastSnapshot.Load(); last > 0 {
		st.LastSnapshotAgeSeconds = time.Duration(s.now().UnixNano() - last).Seconds()
	}
	return st
}

type labelStats struct {
	Total     int64   `json:"total"`
	PerSecond float64 `json:"per_second"`
}

// ingestStats reports streaming-ingestion throughput: how many append
// batches landed and how many tuples they carried.
type ingestStats struct {
	Appends        int64   `json:"appends"`
	TuplesAppended int64   `json:"tuples_appended"`
	PerSecond      float64 `json:"tuples_per_second"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	uptime := s.now().Sub(m.startedAt).Seconds()
	resp := statsResponse{
		UptimeSeconds: uptime,
		Sessions: sessionStats{
			Active:   s.sessions.active.Load(),
			Created:  s.sessions.created.Load(),
			Restored: s.sessions.restored.Load(),
			Deleted:  s.sessions.deleted.Load(),
			Evicted:  s.sessions.evicted.Load(),
			Rejected: s.sessions.rejected.Load(),
			Max:      s.cfg.MaxSessions,
		},
		Labels: labelStats{Total: m.labels.Load()},
		Ingest: ingestStats{
			Appends:        m.appends.Load(),
			TuplesAppended: m.tuplesAppended.Load(),
		},
		Store:     s.storeStats(),
		Endpoints: make(map[string]endpointStats),
	}
	if uptime > 0 {
		resp.Labels.PerSecond = float64(resp.Labels.Total) / uptime
		resp.Ingest.PerSecond = float64(resp.Ingest.TuplesAppended) / uptime
	}
	m.endpoints.Range(func(key, value any) bool {
		em := value.(*endpointMetrics)
		resp.Endpoints[key.(string)] = endpointStats{
			Count:  em.count.Load(),
			Errors: em.errors.Load(),
			MeanMS: em.hist.meanMS(),
			P50MS:  em.hist.quantile(0.50),
			P95MS:  em.hist.quantile(0.95),
			P99MS:  em.hist.quantile(0.99),
		}
		return true
	})
	for pattern := range resp.Endpoints {
		resp.EndpointOrder = append(resp.EndpointOrder, pattern)
	}
	sort.Strings(resp.EndpointOrder)
	writeJSON(w, http.StatusOK, resp)
}
