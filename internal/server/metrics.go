package server

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// reservoirSize is the per-endpoint sample window: a power of two so
// the ring index is a mask, large enough that p99 over the window
// rests on ~10 samples.
const reservoirSize = 1024

// latencyReservoir keeps the last reservoirSize request durations in a
// fixed ring of atomics. Recording is two atomic ops — an index fetch
// and a slot store — with no lock, no allocation, and no sharing with
// the read side, so sampling can never perturb the benchmark being
// measured. Quantiles are computed exactly (not bucket-rounded like
// the log histogram this replaced) by copying and sorting the window
// at /stats read time, where an allocation is harmless.
type latencyReservoir struct {
	n     atomic.Int64 // total observations ever
	sumNS atomic.Int64
	ring  [reservoirSize]atomic.Int64 // nanoseconds
}

func (r *latencyReservoir) observe(d time.Duration) {
	if d <= 0 {
		// Keep zero as the "never written" sentinel and quantiles
		// positive even under a frozen test clock.
		d = 1
	}
	i := r.n.Add(1) - 1
	r.ring[i&(reservoirSize-1)].Store(int64(d))
	r.sumNS.Add(int64(d))
}

// window copies the filled portion of the ring, sorted ascending.
// Slots are read without synchronization against concurrent stores —
// a sample may be torn between two requests' values, which for a
// stats panel is noise, not corruption.
func (r *latencyReservoir) window() []int64 {
	n := r.n.Load()
	if n > reservoirSize {
		n = reservoirSize
	}
	out := make([]int64, 0, n)
	for i := int64(0); i < n; i++ {
		if v := r.ring[i].Load(); v > 0 {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// quantileMS reads the p-th percentile (in milliseconds) from a sorted
// window, or 0 when empty.
func quantileMS(window []int64, p float64) float64 {
	if len(window) == 0 {
		return 0
	}
	rank := int(p*float64(len(window)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(window) {
		rank = len(window)
	}
	return float64(window[rank-1]) / 1e6
}

func (r *latencyReservoir) meanMS() float64 {
	total := r.n.Load()
	if total == 0 {
		return 0
	}
	return float64(r.sumNS.Load()) / float64(total) / 1e6
}

// endpointMetrics aggregates one route pattern (or wire op).
type endpointMetrics struct {
	count  atomic.Int64
	errors atomic.Int64 // responses with status >= 400
	res    latencyReservoir
}

// metrics is the server-wide instrumentation: per-endpoint latency
// plus label and ingestion throughput. Endpoint slots live in a
// sync.Map so the steady state (slot exists) is a lock-free load and
// everything after is atomics — no global serialization point on the
// request path.
type metrics struct {
	endpoints      sync.Map     // pattern string -> *endpointMetrics
	labels         atomic.Int64 // successful label applications
	appends        atomic.Int64 // successful append batches
	tuplesAppended atomic.Int64 // tuples streamed in via append
	startedAt      time.Time
}

func newMetrics(now time.Time) *metrics {
	return &metrics{startedAt: now}
}

func (m *metrics) endpoint(pattern string) *endpointMetrics {
	if em, ok := m.endpoints.Load(pattern); ok {
		return em.(*endpointMetrics)
	}
	em, _ := m.endpoints.LoadOrStore(pattern, &endpointMetrics{})
	return em.(*endpointMetrics)
}

// record is the single accounting entry point for both transports:
// the HTTP middleware calls it with the matched route pattern, the
// wire connection handler (via Server.RecordWireOp) with the op's
// "WIRE <op>" label.
func (m *metrics) record(pattern string, d time.Duration, isErr bool) {
	em := m.endpoint(pattern)
	em.count.Add(1)
	if isErr {
		em.errors.Add(1)
	}
	em.res.observe(d)
}

// statusRecorder captures the response status for error accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux, recording count, errors, and latency per
// matched route pattern (r.Pattern is set by ServeMux on match).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		pattern := r.Pattern
		if pattern == "" {
			pattern = "unmatched"
		}
		s.metrics.record(pattern, s.now().Sub(start), rec.status >= 400)
	})
}

type endpointStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

type statsResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Sessions      sessionStats             `json:"sessions"`
	Labels        labelStats               `json:"labels"`
	Ingest        ingestStats              `json:"ingest"`
	Store         storeStats               `json:"store"`
	Endpoints     map[string]endpointStats `json:"endpoints"`
	EndpointOrder []string                 `json:"endpoint_order"`
}

type sessionStats struct {
	Active   int64 `json:"active"`
	Created  int64 `json:"created"`
	Restored int64 `json:"restored"`
	Deleted  int64 `json:"deleted"`
	Evicted  int64 `json:"evicted"`
	Rejected int64 `json:"rejected"`
	Max      int   `json:"max,omitempty"`
}

// storeStats is the durability block of /stats and GET /v1/sessions:
// which backend holds the sessions, how many live sessions were
// replayed from it at startup, how much WAL/snapshot traffic it has
// absorbed, and how stale the newest snapshot is.
type storeStats struct {
	Backend          string `json:"backend"`
	RestoredSessions int64  `json:"restored_sessions"`
	EventsLogged     int64  `json:"events_logged"`
	Snapshots        int64  `json:"snapshots"`
	PersistErrors    int64  `json:"persist_errors"`
	// WALFormat is the on-disk format new writes use ("v2"); absent
	// for backends without a durable format (mem).
	WALFormat string `json:"wal_format,omitempty"`
	// RestoreMS is how long the startup Restore took; 0 when this
	// process did not restore anything.
	RestoreMS float64 `json:"restore_ms"`
	// LastSnapshotAgeSeconds is the age of the most recent snapshot
	// write; -1 when no snapshot has been written this process.
	LastSnapshotAgeSeconds float64 `json:"last_snapshot_age_seconds"`
}

// formatter is the optional store side-interface reporting its
// on-disk format version (implemented by the disk backend).
type formatter interface{ Format() string }

// storeStats assembles the durability block.
func (s *Server) storeStats() storeStats {
	st := storeStats{
		Backend:                s.cfg.Store.Name(),
		RestoredSessions:       s.sessions.restored.Load(),
		EventsLogged:           s.persist.events.Load(),
		Snapshots:              s.persist.snapshots.Load(),
		PersistErrors:          s.persist.errors.Load(),
		RestoreMS:              float64(s.persist.restoreNS.Load()) / 1e6,
		LastSnapshotAgeSeconds: -1,
	}
	if f, ok := s.cfg.Store.(formatter); ok {
		st.WALFormat = f.Format()
	}
	if last := s.persist.lastSnapshot.Load(); last > 0 {
		st.LastSnapshotAgeSeconds = time.Duration(s.now().UnixNano() - last).Seconds()
	}
	return st
}

type labelStats struct {
	Total     int64   `json:"total"`
	PerSecond float64 `json:"per_second"`
}

// ingestStats reports streaming-ingestion throughput: how many append
// batches landed and how many tuples they carried.
type ingestStats struct {
	Appends        int64   `json:"appends"`
	TuplesAppended int64   `json:"tuples_appended"`
	PerSecond      float64 `json:"tuples_per_second"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	uptime := s.now().Sub(m.startedAt).Seconds()
	resp := statsResponse{
		UptimeSeconds: uptime,
		Sessions: sessionStats{
			Active:   s.sessions.active.Load(),
			Created:  s.sessions.created.Load(),
			Restored: s.sessions.restored.Load(),
			Deleted:  s.sessions.deleted.Load(),
			Evicted:  s.sessions.evicted.Load(),
			Rejected: s.sessions.rejected.Load(),
			Max:      s.cfg.MaxSessions,
		},
		Labels: labelStats{Total: m.labels.Load()},
		Ingest: ingestStats{
			Appends:        m.appends.Load(),
			TuplesAppended: m.tuplesAppended.Load(),
		},
		Store:     s.storeStats(),
		Endpoints: make(map[string]endpointStats),
	}
	if uptime > 0 {
		resp.Labels.PerSecond = float64(resp.Labels.Total) / uptime
		resp.Ingest.PerSecond = float64(resp.Ingest.TuplesAppended) / uptime
	}
	m.endpoints.Range(func(key, value any) bool {
		em := value.(*endpointMetrics)
		win := em.res.window()
		resp.Endpoints[key.(string)] = endpointStats{
			Count:  em.count.Load(),
			Errors: em.errors.Load(),
			MeanMS: em.res.meanMS(),
			P50MS:  quantileMS(win, 0.50),
			P95MS:  quantileMS(win, 0.95),
			P99MS:  quantileMS(win, 0.99),
		}
		return true
	})
	for pattern := range resp.Endpoints {
		resp.EndpointOrder = append(resp.EndpointOrder, pattern)
	}
	sort.Strings(resp.EndpointOrder)
	writeJSON(w, http.StatusOK, resp)
}
