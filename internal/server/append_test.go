package server_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/workload"
)

type appendResp struct {
	Appended     int    `json:"appended"`
	Tuples       int    `json:"tuples"`
	NewlyImplied []int  `json:"newly_implied"`
	Informative  int    `json:"informative"`
	Done         bool   `json:"done"`
	Progress     string `json:"progress"`
}

type growableSummary struct {
	ID             string `json:"id"`
	Tuples         int    `json:"tuples"`
	BaseTuples     int    `json:"base_tuples"`
	AppendedTuples int    `json:"appended_tuples"`
	Informative    int    `json:"informative"`
	Done           bool   `json:"done"`
}

func createGrowable(t *testing.T, ts *httptest.Server, csv, strategy string) growableSummary {
	t.Helper()
	var s growableSummary
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]any{"csv": csv, "strategy": strategy},
		http.StatusCreated, &s)
	return s
}

const streamBaseCSV = `a,b,c,d
1,1,2,2
3,4,5,6
`

func TestAppendTuplesRowsAndSummary(t *testing.T) {
	ts := newTestServer(t)
	s := createGrowable(t, ts, streamBaseCSV, "lookahead-maxmin")
	if s.BaseTuples != 2 || s.AppendedTuples != 0 {
		t.Fatalf("create summary base/appended = %d/%d, want 2/0", s.BaseTuples, s.AppendedTuples)
	}
	base := ts.URL + "/v1/sessions/" + s.ID

	// Converge: label (1,1,2,2) positive and (3,4,5,6) negative.
	doJSON(t, "POST", base+"/label", map[string]any{"index": 0, "label": "+"}, http.StatusOK, nil)
	doJSON(t, "POST", base+"/label", map[string]any{"index": 1, "label": "-"}, http.StatusOK, nil)

	// Stream implied arrivals (rows encoding): both land labeled.
	var ar appendResp
	doJSON(t, "POST", base+"/tuples", map[string]any{
		"rows": [][]string{{"7", "7", "8", "8"}, {"9", "10", "11", "12"}},
	}, http.StatusOK, &ar)
	if ar.Appended != 2 || ar.Tuples != 4 {
		t.Fatalf("append reported %d/%d tuples, want 2 appended of 4", ar.Appended, ar.Tuples)
	}
	if len(ar.NewlyImplied) != 2 || !ar.Done {
		t.Fatalf("implied arrivals: newly=%v done=%v, want 2 implied and done", ar.NewlyImplied, ar.Done)
	}

	// An informative arrival (a=b only) re-opens the session.
	doJSON(t, "POST", base+"/tuples", map[string]any{
		"rows": [][]string{{"20", "20", "21", "22"}},
	}, http.StatusOK, &ar)
	if ar.Done || ar.Informative != 1 {
		t.Fatalf("informative arrival: done=%v informative=%d", ar.Done, ar.Informative)
	}

	var after growableSummary
	doJSON(t, "GET", base, nil, http.StatusOK, &after)
	if after.Tuples != 5 || after.BaseTuples != 2 || after.AppendedTuples != 3 {
		t.Fatalf("summary after appends = %d total / %d base / %d appended, want 5/2/3",
			after.Tuples, after.BaseTuples, after.AppendedTuples)
	}

	// /next proposes the informative arrival; labeling it converges.
	var n next
	doJSON(t, "GET", base+"/next", nil, http.StatusOK, &n)
	if n.Done || n.Tuple == nil || n.Tuple.Index != 4 {
		t.Fatalf("next after informative arrival = %+v, want tuple 4", n)
	}
	doJSON(t, "POST", base+"/label", map[string]any{"index": 4, "label": "+"}, http.StatusOK, nil)
	doJSON(t, "GET", base, nil, http.StatusOK, &after)
	if !after.Done {
		t.Fatalf("session not done after labeling the arrival: %+v", after)
	}

	// /stats surfaces the ingestion counters.
	var stats struct {
		Ingest struct {
			Appends        int64 `json:"appends"`
			TuplesAppended int64 `json:"tuples_appended"`
		} `json:"ingest"`
	}
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &stats)
	if stats.Ingest.Appends != 2 || stats.Ingest.TuplesAppended != 3 {
		t.Fatalf("stats ingest = %+v, want 2 appends / 3 tuples", stats.Ingest)
	}
}

func TestAppendTuplesCSVAndSchemaMismatch(t *testing.T) {
	ts := newTestServer(t)
	s := createGrowable(t, ts, streamBaseCSV, "lookahead-maxmin")
	base := ts.URL + "/v1/sessions/" + s.ID

	var ar appendResp
	doJSON(t, "POST", base+"/tuples", map[string]any{
		"csv": "a,b,c,d\n30,30,31,32\n",
	}, http.StatusOK, &ar)
	if ar.Appended != 1 || ar.Tuples != 3 {
		t.Fatalf("CSV append = %+v, want 1 appended of 3", ar)
	}

	// Wrong header (schema mismatch) is rejected whole with 409.
	doJSON(t, "POST", base+"/tuples", map[string]any{
		"csv": "a,b,c\n40,40,41\n",
	}, http.StatusConflict, nil)
	// Wrong row arity likewise.
	doJSON(t, "POST", base+"/tuples", map[string]any{
		"rows": [][]string{{"50", "50"}},
	}, http.StatusConflict, nil)
	// Ambiguous and empty bodies are 400s.
	doJSON(t, "POST", base+"/tuples", map[string]any{
		"csv": "a,b,c,d\n1,2,3,4\n", "rows": [][]string{{"1", "2", "3", "4"}},
	}, http.StatusBadRequest, nil)
	doJSON(t, "POST", base+"/tuples", map[string]any{}, http.StatusBadRequest, nil)
	// A header-only CSV carries no arrivals: 400, and no side effects
	// on metrics or the deferred set.
	doJSON(t, "POST", base+"/tuples", map[string]any{"csv": "a,b,c,d\n"}, http.StatusBadRequest, nil)
	// Unknown session is a 404.
	doJSON(t, "POST", ts.URL+"/v1/sessions/s9999/tuples", map[string]any{
		"rows": [][]string{{"1", "2", "3", "4"}},
	}, http.StatusNotFound, nil)

	// Failed appends left the instance alone.
	var after growableSummary
	doJSON(t, "GET", base, nil, http.StatusOK, &after)
	if after.Tuples != 3 || after.AppendedTuples != 1 {
		t.Fatalf("summary after rejected appends = %+v, want 3 tuples / 1 appended", after)
	}
}

// TestBodyLimit413 pins the MaxBodyBytes hardening on every ingestion
// endpoint: oversized CSV/JSON bodies get 413, within-limit requests
// still work.
func TestBodyLimit413(t *testing.T) {
	srv := server.NewWith(server.Config{MaxBodyBytes: 4096})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	big := strings.Repeat("x", 8192)
	for _, ep := range []string{"/v1/sessions", "/v1/sessions/import"} {
		resp, err := http.Post(ts.URL+ep, "application/json",
			bytes.NewReader([]byte(fmt.Sprintf(`{"csv": %q}`, big))))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s with oversized body: status %d, want 413", ep, resp.StatusCode)
		}
	}

	s := createGrowable(t, ts, streamBaseCSV, "lookahead-maxmin")
	resp, err := http.Post(ts.URL+"/v1/sessions/"+s.ID+"/tuples", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"csv": %q}`, big))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized append: status %d, want 413", resp.StatusCode)
	}

	// Within-limit traffic is unaffected.
	var ar appendResp
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/tuples", map[string]any{
		"rows": [][]string{{"7", "7", "8", "8"}},
	}, http.StatusOK, &ar)
	if ar.Appended != 1 {
		t.Fatalf("within-limit append = %+v", ar)
	}
}

// TestStreamedSessionMatchesBuildOnce drives a session whose zipf
// instance arrives in batches over HTTP and a session created from the
// full CSV, with the same oracle, and requires the same inferred
// predicate — the end-to-end streaming equivalence at the API level.
func TestStreamedSessionMatchesBuildOnce(t *testing.T) {
	ts := newTestServer(t)
	stream, err := workload.NewStream("zipf", workload.StreamConfig{
		Tuples: 60, Initial: 15, Batches: 5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Build-once session over the final instance.
	full := relation.New(stream.Initial.Schema())
	stream.Initial.Each(func(i int, tu relation.Tuple) { full.MustAppend(tu) })
	for _, b := range stream.Batches {
		for _, tu := range b {
			full.MustAppend(tu)
		}
	}
	var fullCSV, initCSV bytes.Buffer
	if err := relation.WriteCSV(&fullCSV, full); err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteCSV(&initCSV, stream.Initial); err != nil {
		t.Fatal(err)
	}

	runToResult := func(id string, batches [][]relation.Tuple) string {
		base := ts.URL + "/v1/sessions/" + id
		nextBatch := 0
		for step := 0; ; step++ {
			if step > 4*full.Len() {
				t.Fatalf("session %s: no convergence", id)
			}
			if nextBatch < len(batches) && step%2 == 0 {
				rows := make([][]string, 0, len(batches[nextBatch]))
				for _, tu := range batches[nextBatch] {
					row := make([]string, len(tu))
					for c, v := range tu {
						row[c] = relation.EncodeCell(v)
					}
					rows = append(rows, row)
				}
				doJSON(t, "POST", base+"/tuples", map[string]any{"rows": rows}, http.StatusOK, nil)
				nextBatch++
				continue
			}
			var n next
			doJSON(t, "GET", base+"/next", nil, http.StatusOK, &n)
			if n.Done {
				if nextBatch < len(batches) {
					continue
				}
				break
			}
			label := "-"
			if core.Selects(stream.Goal, full.Tuple(n.Tuple.Index)) {
				label = "+"
			}
			doJSON(t, "POST", base+"/label",
				map[string]any{"index": n.Tuple.Index, "label": label}, http.StatusOK, nil)
		}
		var res struct {
			Done      bool   `json:"done"`
			Predicate string `json:"predicate"`
		}
		doJSON(t, "GET", base+"/result", nil, http.StatusOK, &res)
		if !res.Done {
			t.Fatalf("session %s: result before convergence", id)
		}
		return res.Predicate
	}

	once := createGrowable(t, ts, fullCSV.String(), "lookahead-maxmin")
	streamed := createGrowable(t, ts, initCSV.String(), "lookahead-maxmin")
	gotOnce := runToResult(once.ID, nil)
	gotStreamed := runToResult(streamed.ID, stream.Batches)
	if gotOnce != gotStreamed {
		t.Fatalf("streamed predicate %q, build-once predicate %q", gotStreamed, gotOnce)
	}

	var sum growableSummary
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+streamed.ID, nil, http.StatusOK, &sum)
	if sum.Tuples != full.Len() || sum.BaseTuples != stream.Initial.Len() {
		t.Fatalf("streamed summary %+v, want %d tuples (%d base)", sum, full.Len(), stream.Initial.Len())
	}
}

// TestAppendPreservesCreationTyping pins the typed-header contract: a
// session created from an annotated CSV ("a:string") parses arrivals
// under the same per-column rules, so a cell like "01" stays a string
// instead of flipping to int 1 — which would silently merge cells the
// creation-time parsing keeps distinct and mislabel the arrival.
func TestAppendPreservesCreationTyping(t *testing.T) {
	ts := newTestServer(t)
	s := createGrowable(t, ts, "a:string,b:string\n1,1\n", "lookahead-maxmin")
	base := ts.URL + "/v1/sessions/" + s.ID
	doJSON(t, "POST", base+"/label", map[string]any{"index": 0, "label": "+"}, http.StatusOK, nil)

	// Under string typing "01" != "1": the arrival's signature is
	// bottom, which M_P = {a,b} does not refine, and with no negative
	// examples it is informative. Inference parsing would read both
	// cells as int 1 and imply the arrival positive on landing.
	for _, body := range []map[string]any{
		{"rows": [][]string{{"01", "1"}}},
		{"csv": "a,b\n01,1\n"},
	} {
		var ar appendResp
		doJSON(t, "POST", base+"/tuples", body, http.StatusOK, &ar)
		if len(ar.NewlyImplied) != 0 {
			t.Fatalf("append %v: typed arrival implied on landing (%v) — typing not preserved", body, ar.NewlyImplied)
		}
	}
	var sum growableSummary
	doJSON(t, "GET", base, nil, http.StatusOK, &sum)
	if sum.Informative != 2 || sum.Done {
		t.Fatalf("typed arrivals should be informative: %+v", sum)
	}
}

// TestAppendIgnoresArrivalHeaderTyping is the converse contract: a
// session created without typing pins all-inference parsing, so an
// append body cannot smuggle per-column annotations in through its
// own CSV header — the same cells parse the same way whatever
// encoding or header they arrive with.
func TestAppendIgnoresArrivalHeaderTyping(t *testing.T) {
	ts := newTestServer(t)
	s := createGrowable(t, ts, "a,b\n1,1\n2,3\n", "lookahead-maxmin")
	base := ts.URL + "/v1/sessions/" + s.ID
	doJSON(t, "POST", base+"/label", map[string]any{"index": 0, "label": "+"}, http.StatusOK, nil)

	// Under the session's inference parsing "01" and "1" are both
	// int 1 (a=b, implied positive); an honored "a:string" annotation
	// would keep them distinct and informative instead.
	for _, body := range []map[string]any{
		{"csv": "a:string,b:string\n01,1\n"},
		{"rows": [][]string{{"01", "1"}}},
	} {
		var ar appendResp
		doJSON(t, "POST", base+"/tuples", body, http.StatusOK, &ar)
		if len(ar.NewlyImplied) != 1 {
			t.Fatalf("append %v: arrival not implied (%v) — arrival header annotations were honored", body, ar.NewlyImplied)
		}
	}
}
