package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

const travelCSV = `From,To,Airline,City,Discount
Paris,Lille,AF,NYC,AA
Paris,Lille,AF,Paris,None
Paris,Lille,AF,Lille,AF
Lille,NYC,AA,NYC,AA
Lille,NYC,AA,Paris,None
Lille,NYC,AA,Lille,AF
NYC,Paris,AA,NYC,AA
NYC,Paris,AA,Paris,None
NYC,Paris,AA,Lille,AF
Paris,NYC,AF,NYC,AA
Paris,NYC,AF,Paris,None
Paris,NYC,AF,Lille,AF
`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var reader io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d; body: %s", method, url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %s: %v", method, url, data, err)
		}
	}
}

// errBody is the structured error envelope of the /v1 contract.
type errBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// wantError performs a request expected to fail and asserts the
// envelope carries the given code (the status is derived from it).
func wantError(t *testing.T, method, url string, body any, wantStatus int, wantCode string) errBody {
	t.Helper()
	var e errBody
	doJSON(t, method, url, body, wantStatus, &e)
	if e.Error.Code != wantCode {
		t.Errorf("%s %s: error code %q, want %q (message %q)", method, url, e.Error.Code, wantCode, e.Error.Message)
	}
	if e.Error.Message == "" {
		t.Errorf("%s %s: error envelope missing message", method, url)
	}
	return e
}

// listBody is one page of GET /v1/sessions.
type listBody struct {
	Sessions []summary `json:"sessions"`
	Total    int       `json:"total"`
	Limit    int       `json:"limit"`
	Offset   int       `json:"offset"`
}

type summary struct {
	ID          string   `json:"id"`
	Strategy    string   `json:"strategy"`
	Tuples      int      `json:"tuples"`
	Attributes  []string `json:"attributes"`
	Labels      int      `json:"labels"`
	Implied     int      `json:"implied"`
	Informative int      `json:"informative"`
	Done        bool     `json:"done"`
}

type next struct {
	Done  bool `json:"done"`
	Tuple *struct {
		Index  int               `json:"index"`
		Values map[string]string `json:"values"`
	} `json:"tuple"`
}

type labelResp struct {
	NewlyImplied []int  `json:"newly_implied"`
	Informative  int    `json:"informative"`
	Done         bool   `json:"done"`
	Progress     string `json:"progress"`
}

type result struct {
	Done       bool   `json:"done"`
	Atoms      string `json:"atoms"`
	SQL        string `json:"sql"`
	Certain    string `json:"certain"`
	Undecided  string `json:"undecided"`
	Consistent int    `json:"consistent_queries"`
}

func createSession(t *testing.T, ts *httptest.Server, strategy string) summary {
	t.Helper()
	var s summary
	doJSON(t, "POST", ts.URL+"/v1/sessions",
		map[string]any{"csv": travelCSV, "strategy": strategy},
		http.StatusCreated, &s)
	return s
}

func TestCreateSession(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "")
	if s.ID == "" || s.Tuples != 12 || len(s.Attributes) != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Strategy != "lookahead-maxmin" {
		t.Errorf("default strategy = %q", s.Strategy)
	}
	if s.Done || s.Informative != 12 {
		t.Errorf("fresh session state = %+v", s)
	}
}

func TestCreateErrors(t *testing.T) {
	ts := newTestServer(t)
	wantError(t, "POST", ts.URL+"/v1/sessions", map[string]any{"csv": ""},
		http.StatusBadRequest, "bad_input")
	wantError(t, "POST", ts.URL+"/v1/sessions", map[string]any{"csv": travelCSV, "strategy": "bogus"},
		http.StatusBadRequest, "unknown_strategy")
	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", resp.StatusCode)
	}
}

func TestUnknownSession(t *testing.T) {
	ts := newTestServer(t)
	wantError(t, "GET", ts.URL+"/v1/sessions/zzz", nil, http.StatusNotFound, "not_found")
	wantError(t, "GET", ts.URL+"/v1/sessions/zzz/next", nil, http.StatusNotFound, "not_found")
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/zzz", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete unknown status = %d", resp.StatusCode)
	}
}

// TestDriveToConvergence runs a whole inference over HTTP: fetch next,
// answer per the Q2 goal oracle, until done; then check the result.
func TestDriveToConvergence(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "lookahead-maxmin")
	rel := workload.Travel()
	goal := workload.TravelQ2()

	questions := 0
	for {
		var n next
		doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/next", nil, http.StatusOK, &n)
		if n.Done {
			break
		}
		if n.Tuple == nil {
			t.Fatal("next returned neither done nor tuple")
		}
		questions++
		if questions > 12 {
			t.Fatal("server asked more questions than tuples")
		}
		label := "-"
		if core.Selects(goal, rel.Tuple(n.Tuple.Index)) {
			label = "+"
		}
		var lr labelResp
		doJSON(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
			map[string]any{"index": n.Tuple.Index, "label": label},
			http.StatusOK, &lr)
	}
	var res result
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/result", nil, http.StatusOK, &res)
	if !res.Done {
		t.Error("result not done")
	}
	if res.Atoms != "To=City ∧ Airline=Discount" {
		t.Errorf("atoms = %q", res.Atoms)
	}
	if !strings.Contains(res.SQL, `"To" = "City"`) {
		t.Errorf("sql = %q", res.SQL)
	}
	if res.Consistent != 1 {
		t.Errorf("consistent queries = %d, want 1", res.Consistent)
	}
	if res.Undecided != "" {
		t.Errorf("undecided = %q", res.Undecided)
	}
	if questions > 6 {
		t.Errorf("took %d questions; strategy should need few", questions)
	}
}

func TestLabelValidation(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "")
	wantError(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
		map[string]any{"index": 99, "label": "+"}, http.StatusBadRequest, "out_of_range")
	wantError(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
		map[string]any{"index": 0, "label": "maybe"}, http.StatusBadRequest, "bad_input")
	// Conflicting label: (12)+ implies (3)+; labeling (3)- conflicts.
	var lr labelResp
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
		map[string]any{"index": 11, "label": "+"}, http.StatusOK, &lr)
	e := wantError(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
		map[string]any{"index": 2, "label": "-"}, http.StatusConflict, "inconsistent_label")
	if !strings.Contains(e.Error.Message, "inconsistent") {
		t.Errorf("conflict message = %q", e.Error.Message)
	}
	// Relabeling an explicit label is its own failure mode: 422.
	wantError(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
		map[string]any{"index": 11, "label": "-"}, http.StatusUnprocessableEntity, "already_labeled")
}

func TestSkipDefersTuple(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "lookahead-maxmin")
	var n1 next
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/next", nil, http.StatusOK, &n1)
	var lr labelResp
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
		map[string]any{"index": n1.Tuple.Index, "label": "skip"}, http.StatusOK, &lr)
	var n2 next
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/next", nil, http.StatusOK, &n2)
	if n2.Tuple == nil {
		t.Fatal("no alternative proposed after skip")
	}
	if n2.Tuple.Index == n1.Tuple.Index {
		t.Error("skip did not defer the tuple")
	}
}

func TestTopK(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "lookahead-maxmin")
	var out struct {
		Tuples []struct {
			Index int `json:"index"`
		} `json:"tuples"`
	}
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/topk?k=4", nil, http.StatusOK, &out)
	if len(out.Tuples) != 4 {
		t.Errorf("topk returned %d", len(out.Tuples))
	}
	seen := map[int]bool{}
	for _, tv := range out.Tuples {
		if seen[tv.Index] {
			t.Error("duplicate tuple in topk")
		}
		seen[tv.Index] = true
	}
	wantError(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/topk?k=0", nil, http.StatusBadRequest, "bad_input")
	wantError(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/topk?k=x", nil, http.StatusBadRequest, "bad_input")
}

func TestListAndDelete(t *testing.T) {
	ts := newTestServer(t)
	a := createSession(t, ts, "")
	b := createSession(t, ts, "random")
	var list listBody
	doJSON(t, "GET", ts.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if list.Total != 2 || len(list.Sessions) != 2 || list.Sessions[0].ID > list.Sessions[1].ID {
		t.Errorf("list = %+v", list)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+a.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete status = %d", resp.StatusCode)
	}
	doJSON(t, "GET", ts.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if list.Total != 1 || len(list.Sessions) != 1 || list.Sessions[0].ID != b.ID {
		t.Errorf("after delete list = %+v", list)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "lookahead-maxmin")
	var lr labelResp
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
		map[string]any{"index": 2, "label": "+"}, http.StatusOK, &lr)

	resp, err := http.Get(ts.URL + "/v1/sessions/" + s.ID + "/export")
	if err != nil {
		t.Fatal(err)
	}
	exported, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	resp, err = http.Post(ts.URL+"/v1/sessions/import", "application/json", bytes.NewReader(exported))
	if err != nil {
		t.Fatal(err)
	}
	var imported summary
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("import status = %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &imported); err != nil {
		t.Fatal(err)
	}
	if imported.Labels != 1 || imported.Tuples != 12 {
		t.Errorf("imported = %+v", imported)
	}
	if imported.Strategy != "lookahead-maxmin" {
		t.Errorf("imported strategy = %q", imported.Strategy)
	}
	// Corrupt import rejected.
	resp, err = http.Post(ts.URL+"/v1/sessions/import", "application/json", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt import status = %d", resp.StatusCode)
	}
}

func TestResultMidSession(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "")
	var lr labelResp
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+s.ID+"/label",
		map[string]any{"index": 2, "label": "+"}, http.StatusOK, &lr)
	var res result
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/result", nil, http.StatusOK, &res)
	if res.Done {
		t.Error("one label should not converge")
	}
	// After (3)+: M_P = Q2, 4 consistent queries, nothing certain yet.
	if res.Consistent != 4 {
		t.Errorf("consistent = %d, want 4", res.Consistent)
	}
	if res.Certain != "" {
		t.Errorf("certain = %q, want empty", res.Certain)
	}
	if res.Undecided == "" {
		t.Error("undecided should list Q2's atoms")
	}
}

func TestConcurrentRequestsOneSession(t *testing.T) {
	// Many goroutines label the same session concurrently; the server
	// must serialize them. Every tuple gets one goroutine posting a
	// Q2-consistent label; duplicates and implied conflicts surface as
	// 409s, which is acceptable — what matters is that nothing races
	// and the final state is consistent and converged.
	ts := newTestServer(t)
	s := createSession(t, ts, "lookahead-maxmin")
	rel := workload.Travel()
	goal := workload.TravelQ2()
	errs := make(chan error, rel.Len())
	for i := 0; i < rel.Len(); i++ {
		go func(i int) {
			errs <- func() error {
				label := "-"
				if core.Selects(goal, rel.Tuple(i)) {
					label = "+"
				}
				data, _ := json.Marshal(map[string]any{"index": i, "label": label})
				resp, err := http.Post(ts.URL+"/v1/sessions/"+s.ID+"/label", "application/json", bytes.NewReader(data))
				if err != nil {
					return err
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict &&
					resp.StatusCode != http.StatusUnprocessableEntity {
					return fmt.Errorf("tuple %d: status %d", i, resp.StatusCode)
				}
				return nil
			}()
		}(i)
	}
	for i := 0; i < rel.Len(); i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	var res result
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+s.ID+"/result", nil, http.StatusOK, &res)
	if !res.Done {
		t.Error("session not converged after labeling every tuple")
	}
	if res.Atoms != "To=City ∧ Airline=Discount" {
		t.Errorf("atoms = %q", res.Atoms)
	}
}

func TestConcurrentSessions(t *testing.T) {
	ts := newTestServer(t)
	const n = 8
	errs := make(chan error, n)
	for g := 0; g < n; g++ {
		go func(g int) {
			errs <- func() error {
				var s summary
				data, _ := json.Marshal(map[string]any{"csv": travelCSV})
				resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(data))
				if err != nil {
					return err
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					return fmt.Errorf("create status %d", resp.StatusCode)
				}
				if err := json.Unmarshal(body, &s); err != nil {
					return err
				}
				// Label tuple (3) in each session concurrently.
				data, _ = json.Marshal(map[string]any{"index": 2, "label": "+"})
				resp, err = http.Post(ts.URL+"/v1/sessions/"+s.ID+"/label", "application/json", bytes.NewReader(data))
				if err != nil {
					return err
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("label status %d", resp.StatusCode)
				}
				return nil
			}()
		}(g)
	}
	for g := 0; g < n; g++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	var list listBody
	doJSON(t, "GET", ts.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if list.Total != n {
		t.Errorf("sessions after concurrent creates = %d, want %d", list.Total, n)
	}
}
