package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/wire"
)

// The transport benchmarks time the same semantic operation — propose
// the next tuple for a live session — over HTTP+JSON and over the
// binary wire protocol, so `go test -bench Propose -benchmem` shows
// what each request costs server-side on either path. The HTTP path
// rides the pooled JSON encode buffers in writeJSON; the wire path the
// zero-alloc codec.

func benchHTTPSession(b *testing.B, ts *httptest.Server) string {
	b.Helper()
	body, err := json.Marshal(map[string]any{"csv": travelCSV, "strategy": "lookahead-maxmin"})
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("create: status %d", resp.StatusCode)
	}
	var s struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		b.Fatal(err)
	}
	return s.ID
}

// BenchmarkHTTPStepPropose is one POST /step propose-only round trip:
// routing, session lock, proposal, pooled JSON encode, full HTTP stack.
func BenchmarkHTTPStepPropose(b *testing.B) {
	ts := httptest.NewServer(server.New().Handler())
	defer ts.Close()
	url := ts.URL + "/v1/sessions/" + benchHTTPSession(b, ts) + "/step"
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(url, "application/json", strings.NewReader("{}"))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("step: status %d", resp.StatusCode)
		}
	}
}

// BenchmarkWireStepPropose is the same propose-only operation framed as
// one wire step (k=1, no answers) on a persistent connection.
func BenchmarkWireStepPropose(b *testing.B) {
	srv := server.New()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ws := &wire.Server{Backend: srv}
	go ws.Serve(ln)
	defer ws.Shutdown(context.Background())
	c, err := wire.Dial(ln.Addr().String(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	id, err := c.Create(travelCSV, "lookahead-maxmin", 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Step(id, nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Proposals) != 1 {
			b.Fatalf("proposals = %v", res.Proposals)
		}
	}
}

// BenchmarkHTTPSummary is one GET /v1/sessions/{id}: the read-only
// envelope whose encode path the writeJSON buffer pool serves.
func BenchmarkHTTPSummary(b *testing.B) {
	ts := httptest.NewServer(server.New().Handler())
	defer ts.Close()
	url := ts.URL + "/v1/sessions/" + benchHTTPSession(b, ts)
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("summary: status %d", resp.StatusCode)
		}
	}
}
