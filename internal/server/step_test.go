package server_test

import (
	"fmt"
	"net/http"
	"testing"
)

// stepResp mirrors the POST /step response shape.
type stepResp struct {
	Applied *labelResp `json:"applied"`
	Done    bool       `json:"done"`
	Tuple   *struct {
		Index  int               `json:"index"`
		Values map[string]string `json:"values"`
	} `json:"tuple"`
	Tuples []struct {
		Index  int               `json:"index"`
		Values map[string]string `json:"values"`
	} `json:"tuples"`
}

// TestStepMatchesLabelNextDialogue drives two identical sessions to
// convergence — one with the classic GET /next + POST /label pair per
// step, one with a single POST /step per step — answering each
// proposal the same way, and requires the two dialogues to propose the
// same tuples in the same order and converge to the same result. /step
// is a round-trip optimization, never a semantic change.
func TestStepMatchesLabelNextDialogue(t *testing.T) {
	ts := newTestServer(t)
	answer := func(index int) string {
		if index%2 == 0 {
			return "+"
		}
		return "-"
	}

	// Classic two-round-trip dialogue.
	classic := createSession(t, ts, "lookahead-maxmin")
	var classicOrder []int
	for steps := 0; steps < 100; steps++ {
		var n next
		doJSON(t, "GET", ts.URL+"/v1/sessions/"+classic.ID+"/next", nil, http.StatusOK, &n)
		if n.Done {
			break
		}
		classicOrder = append(classicOrder, n.Tuple.Index)
		var lr labelResp
		doJSON(t, "POST", ts.URL+"/v1/sessions/"+classic.ID+"/label",
			map[string]any{"index": n.Tuple.Index, "label": answer(n.Tuple.Index)},
			http.StatusOK, &lr)
	}

	// One-round-trip dialogue: the first call proposes, every later
	// call answers and proposes together.
	stepped := createSession(t, ts, "lookahead-maxmin")
	stepURL := ts.URL + "/v1/sessions/" + stepped.ID + "/step"
	var steppedOrder []int
	var sr stepResp
	doJSON(t, "POST", stepURL, map[string]any{}, http.StatusOK, &sr)
	for steps := 0; steps < 100 && !sr.Done && sr.Tuple != nil; steps++ {
		idx := sr.Tuple.Index
		steppedOrder = append(steppedOrder, idx)
		sr = stepResp{}
		doJSON(t, "POST", stepURL,
			map[string]any{"index": idx, "label": answer(idx)},
			http.StatusOK, &sr)
		if sr.Applied == nil {
			t.Fatalf("step with a label returned no applied summary")
		}
	}

	if fmt.Sprint(classicOrder) != fmt.Sprint(steppedOrder) {
		t.Fatalf("dialogues diverged:\n classic %v\n stepped %v", classicOrder, steppedOrder)
	}
	if !sr.Done {
		t.Fatalf("stepped dialogue did not converge: %+v", sr)
	}

	var a, b result
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+classic.ID+"/result", nil, http.StatusOK, &a)
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+stepped.ID+"/result", nil, http.StatusOK, &b)
	if a.SQL != b.SQL || a.Atoms != b.Atoms {
		t.Fatalf("results diverged: classic %+v, stepped %+v", a, b)
	}
}

// TestStepTopK asks for a ranked batch with the answer applied first.
func TestStepTopK(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "lookahead-maxmin")
	stepURL := ts.URL + "/v1/sessions/" + s.ID + "/step"

	var first stepResp
	doJSON(t, "POST", stepURL, map[string]any{"k": 3}, http.StatusOK, &first)
	if len(first.Tuples) != 3 || first.Tuple != nil || first.Applied != nil {
		t.Fatalf("propose-only k=3 step = %+v", first)
	}

	var second stepResp
	doJSON(t, "POST", stepURL,
		map[string]any{"index": first.Tuples[0].Index, "label": "+", "k": 2},
		http.StatusOK, &second)
	if second.Applied == nil || len(second.Tuples) == 0 {
		t.Fatalf("answer+k step = %+v", second)
	}
}

// TestStepSkip answers "skip" through /step and requires the combined
// proposal to route around the skipped class, like GET /next does.
func TestStepSkip(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "lookahead-maxmin")
	stepURL := ts.URL + "/v1/sessions/" + s.ID + "/step"

	var first stepResp
	doJSON(t, "POST", stepURL, map[string]any{}, http.StatusOK, &first)
	if first.Tuple == nil {
		t.Fatalf("propose-only step = %+v", first)
	}
	var after stepResp
	doJSON(t, "POST", stepURL,
		map[string]any{"index": first.Tuple.Index, "label": "skip"},
		http.StatusOK, &after)
	if after.Applied == nil || after.Tuple == nil {
		t.Fatalf("skip step = %+v", after)
	}
	if after.Tuple.Index == first.Tuple.Index {
		t.Fatalf("skip step re-proposed tuple %d", first.Tuple.Index)
	}
}

// TestStepValidation covers the error envelope cases of POST /step.
func TestStepValidation(t *testing.T) {
	ts := newTestServer(t)
	s := createSession(t, ts, "lookahead-maxmin")
	stepURL := ts.URL + "/v1/sessions/" + s.ID + "/step"

	wantError(t, "POST", stepURL, map[string]any{"label": "+"},
		http.StatusBadRequest, "bad_input")
	wantError(t, "POST", stepURL, map[string]any{"index": 0},
		http.StatusBadRequest, "bad_input")
	wantError(t, "POST", stepURL, map[string]any{"index": 0, "label": "maybe"},
		http.StatusBadRequest, "bad_input")
	wantError(t, "POST", stepURL, map[string]any{"k": -1},
		http.StatusBadRequest, "bad_input")
	wantError(t, "POST", stepURL, map[string]any{"index": 9999, "label": "+"},
		http.StatusBadRequest, "out_of_range")
	wantError(t, "POST", ts.URL+"/v1/sessions/nope/step", map[string]any{},
		http.StatusNotFound, "not_found")

	// A failed answer must not advance the dialogue: the next
	// propose-only call still proposes (the session is unchanged).
	var sr stepResp
	doJSON(t, "POST", stepURL, map[string]any{}, http.StatusOK, &sr)
	if sr.Tuple == nil || sr.Done {
		t.Fatalf("session advanced after failed steps: %+v", sr)
	}

	// /step is v1-only: the unversioned alias must not exist.
	resp, err := http.Post(ts.URL+"/sessions/"+s.ID+"/step", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unversioned /step answered %d, want 404", resp.StatusCode)
	}
}
