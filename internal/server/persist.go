package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	jim "repro"
	"repro/internal/relation"
	"repro/internal/session"
	"repro/internal/store"
	"repro/internal/values"
)

// This file is the bridge between the request handlers and the
// durable store: event construction after each in-memory apply,
// snapshot construction (the session-format-v2 file wrapped in the
// store envelope), and the startup replay that turns snapshots + WAL
// suffixes back into live sessions. Replay goes through the ordinary
// jim.Session methods — the exact code paths the live request took —
// so recovery can never drift from the inference semantics, and it
// never touches the request metrics: replayed labels and appends are
// not new traffic (the ingest counters would otherwise double-count
// every restart and eviction round-trip).

// persistEvent durably logs one mutating event for a session. The
// caller holds the session's write lock, which makes the (in-memory
// apply, AppendEvent) pair atomic with respect to snapshots: a
// snapshot can never record a sequence number whose event is missing
// from the state it captures.
//
// A non-nil return is a CodeInternal *jim.Error: the event could not
// be made durable. The in-memory apply stands, so the client knows the
// answer was taken, but is told the service is degraded rather than
// being handed a silent durability gap. Transport-agnostic — the HTTP
// handlers map the error through writeTypedError, the wire handler
// through its error frame.
func (s *Server) persistEvent(id string, ls *liveSession, ev store.Event) error {
	ship := s.shipperFor()
	if !s.durable && ship == nil {
		return nil
	}
	if ls.deleted {
		// The session was DELETEd while this request waited on the
		// write lock; logging now would re-create the compacted
		// directory. The in-memory apply hit a zombie that is about to
		// be garbage collected — nothing to persist.
		return nil
	}
	if s.durable {
		if err := s.cfg.Store.AppendEvent(id, ev); err != nil {
			s.persist.errors.Add(1)
			return &jim.Error{Code: jim.CodeInternal, Message: fmt.Sprintf("persisting event: %v", err)}
		}
		s.persist.events.Add(1)
		if n := ls.walEvents.Add(1); n >= int64(s.snapshotEvery) {
			// Size half of the snapshot policy: fold the WAL into a fresh
			// snapshot — asynchronously, off the request path. The caller
			// holds the session's write lock; folding inline would make the
			// unlucky SnapshotEvery-th request pay a full-state encode plus
			// snapshot IO (and every subsequent request re-pay it when the
			// store is failing). At most one fold per session in flight; it
			// takes the read lock, so it starts after this request ends.
			// Failure is not the client's problem — the event itself is
			// durable; the log just stays long until the next trigger.
			if ls.snapInFlight.CompareAndSwap(false, true) {
				go func() {
					defer ls.snapInFlight.Store(false)
					if err := s.snapshotSession(id, ls); err != nil {
						s.persist.errors.Add(1)
					}
				}()
			}
		}
	}
	if ship != nil {
		// Ship after the durable append so the follower can never hold
		// an event its owner lost. The caller's locks (write lock, or
		// read lock + pickMu on the clear path) serialize this per
		// session, so enqueue order matches sequence order.
		ev.Seq = ls.replSeq.Add(1)
		ship.ShipEvent(id, ev)
	}
	return nil
}

// labelEvent builds the WAL record of one accepted explicit label.
func labelEvent(index int, l jim.Label) store.Event {
	lbl := "-"
	if l == jim.Positive {
		lbl = "+"
	}
	return store.Event{Op: store.OpLabel, Index: index, Label: lbl}
}

// skipEvent builds the WAL record of one skip.
func skipEvent(index int) store.Event {
	return store.Event{Op: store.OpSkip, Index: index}
}

// clearEvent builds the WAL record of a re-offer round (the skip set
// cleared by a proposal that found everything informative skipped).
func clearEvent() store.Event {
	return store.Event{Op: store.OpClear}
}

// appendEvent builds the WAL record of one arrival batch, cells in
// tagged-value encoding so replay parses them exactly.
func appendEvent(tuples []jim.Tuple) store.Event {
	rows := make([][]string, len(tuples))
	for i, t := range tuples {
		row := make([]string, len(t))
		for c, v := range t {
			row[c] = v.Tag()
		}
		rows[i] = row
	}
	return store.Event{Op: store.OpAppend, Rows: rows}
}

// buildSnapshot serializes a session into the store envelope: the
// session-format-v2 file plus the run configuration (strategy, seed,
// pinned arrival typing, active skips) the file format does not carry.
// Caller holds ls.mu in either mode AND pickMu: Propose mutates the
// skip set under the read lock, so without pickMu a concurrent /next
// could clear skips between this capture and the snapshot's sequence
// stamping (see snapshotLive).
func buildSnapshot(ls *liveSession) (store.Snapshot, error) {
	var buf bytes.Buffer
	meta := session.Meta{Strategy: ls.sess.Strategy(), CreatedAt: ls.createdAt}
	if err := session.Save(&buf, ls.sess.State(), meta); err != nil {
		return store.Snapshot{}, err
	}
	return store.Snapshot{
		Strategy:  ls.sess.Strategy(),
		Seed:      ls.seed,
		CreatedAt: ls.createdAt,
		Typing:    ls.sess.Typing().Annotations(),
		Skips:     ls.sess.Core().Skips(),
		Session:   json.RawMessage(bytes.TrimSpace(buf.Bytes())),
	}, nil
}

// purge fences a session that must not survive (an explicit DELETE, a
// failed create) and discards its durable copy. Setting the deleted
// flag under the session's write lock drains in-flight writers first,
// so the Compact below cannot be undone by a late WAL append or
// snapshot re-creating the directory. Failures are counted for
// /stats. ls may be nil when only the on-disk copy exists.
func (s *Server) purge(id string, ls *liveSession) error {
	ship := s.shipperFor()
	if !s.durable && ship == nil {
		return nil
	}
	if ls != nil {
		ls.mu.Lock()
		ls.deleted = true
		ls.mu.Unlock()
	}
	if ship != nil {
		ship.ShipDrop(id)
	}
	if !s.durable {
		return nil
	}
	if err := s.cfg.Store.Compact(id); err != nil {
		s.persist.errors.Add(1)
		return err
	}
	return nil
}

// snapshotSession folds a session's current state into the store under
// the session's read lock (writers are excluded, concurrent reads
// proceed). The lock is held across the Store.Snapshot call so the
// stamped sequence number cannot run ahead of the captured state.
func (s *Server) snapshotSession(id string, ls *liveSession) error {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return s.snapshotLive(id, ls)
}

// snapshotLive is snapshotSession for callers already holding ls.mu.
// pickMu is held from the state capture through the Store.Snapshot
// call: the store stamps the snapshot with the last assigned sequence,
// and the only events that can be appended under a read lock are skip
// clears (handleNext), which also take pickMu — so a stamped sequence
// can never cover a clear the captured skip set does not reflect.
// Write-path events are excluded by ls.mu itself.
func (s *Server) snapshotLive(id string, ls *liveSession) error {
	if ls.deleted {
		return nil // DELETE won the race; do not re-create its state
	}
	ls.pickMu.Lock()
	defer ls.pickMu.Unlock()
	snap, err := buildSnapshot(ls)
	if err != nil {
		return err
	}
	if s.durable {
		if err := s.cfg.Store.Snapshot(id, snap); err != nil {
			return err
		}
		now := s.now().UnixNano()
		ls.walEvents.Store(0)
		ls.lastSnapshot.Store(now)
		s.persist.snapshots.Add(1)
		s.persist.lastSnapshot.Store(now)
	}
	if ship := s.shipperFor(); ship != nil {
		// Captured under pickMu, so the watermark read here covers
		// exactly the events folded into the snapshot: clear events take
		// pickMu and write-path events are excluded by ls.mu.
		snap.Seq = ls.replSeq.Load()
		ship.ShipSnapshot(id, snap)
	}
	return nil
}

// SnapshotAll folds every live session into the store — the graceful-
// shutdown path, after the HTTP server has drained, so a clean restart
// replays snapshots only and starts serving immediately. Sessions with
// an empty WAL are skipped: their snapshot is already current.
func (s *Server) SnapshotAll() error {
	if !s.durable {
		return nil
	}
	var errs []error
	s.sessions.forEach(func(id string, ls *liveSession) {
		if ls.walEvents.Load() == 0 {
			return
		}
		if err := s.snapshotSession(id, ls); err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", id, err))
		}
	})
	return errors.Join(errs...)
}

// Restore loads every session the store persisted and rebuilds it as a
// live session: the snapshot's session file loads through session.Load
// (labels replayed through the core), the envelope's skips re-apply,
// and the WAL suffix replays through the same jim.Session methods the
// original requests used. It returns how many sessions came back.
//
// Call it once, after NewWith and before serving traffic. Sessions
// that fail to rebuild are reported in the joined error but do not
// block the rest — one corrupt session must not hold the other
// thousands hostage.
//
// Rebuilds fan out across a worker pool: restore is the startup
// critical path (a fleet of sessions replays label-by-label through
// the inference core), and sessions share no state until putRestored
// publishes them — so the decode and replay of each is embarrassingly
// parallel, with only the table insert and id-counter advance serial.
func (s *Server) Restore() (int, error) {
	if !s.durable {
		return 0, nil
	}
	start := s.now()
	// A partially readable store still restores: LoadAll reports
	// per-session casualties in its error while returning everything
	// readable (plus bare entries for the unreadable ids).
	saved, loadErr := s.cfg.Store.LoadAll()
	var errs []error
	if loadErr != nil {
		errs = append(errs, loadErr)
	}
	rebuilt := make([]*liveSession, len(saved))
	rebuildErrs := make([]error, len(saved))
	rebuildOne := func(i int) {
		sv := saved[i]
		if sv.Snapshot == nil && len(sv.Events) == 0 {
			return // unreadable; already reported by LoadAll
		}
		rebuilt[i], rebuildErrs[i] = s.rebuild(sv)
	}
	if workers := min(len(saved), runtime.GOMAXPROCS(0)); workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(saved) {
						return
					}
					rebuildOne(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range saved {
			rebuildOne(i)
		}
	}
	restored := 0
	maxID := int64(0)
	for i, sv := range saved {
		// Every persisted id — restored, corrupt, or remnant — blocks
		// id reuse: a fresh session must never share an id with stale
		// on-disk state, or that state's WAL would replay into it.
		if n, ok := numericID(sv.ID); ok && n > maxID {
			maxID = n
		}
		switch {
		case rebuildErrs[i] != nil:
			errs = append(errs, fmt.Errorf("session %s: %w", sv.ID, rebuildErrs[i]))
		case rebuilt[i] != nil:
			s.sessions.putRestored(sv.ID, rebuilt[i])
			restored++
		}
	}
	if maxID > s.nextID.Load() {
		s.nextID.Store(maxID)
	}
	s.persist.restoreNS.Store(s.now().Sub(start).Nanoseconds())
	return restored, errors.Join(errs...)
}

// rebuild turns one saved session into a live one.
func (s *Server) rebuild(sv store.Saved) (*liveSession, error) {
	if sv.Snapshot == nil {
		return nil, fmt.Errorf("no snapshot on disk (wal-only remnant)")
	}
	st, meta, err := session.Load(bytes.NewReader(sv.Snapshot.Session))
	if err != nil {
		return nil, err
	}
	name := sv.Snapshot.Strategy
	if name == "" {
		name = meta.Strategy
	}
	if name == "" {
		name = jim.DefaultStrategy
	}
	opts := []jim.SessionOption{
		jim.WithStrategy(name),
		jim.WithSeed(sv.Snapshot.Seed),
		jim.WithRedeferLimit(-1),
	}
	ty, err := relation.TypingFromAnnotations(sv.Snapshot.Typing)
	if err != nil {
		return nil, fmt.Errorf("restoring typing: %w", err)
	}
	if ty != nil {
		opts = append(opts, jim.WithTyping(ty))
	}
	sess, err := jim.ResumeSession(st, opts...)
	if err != nil {
		return nil, err
	}
	for _, i := range sv.Snapshot.Skips {
		if err := sess.Skip(i); err != nil {
			return nil, fmt.Errorf("replaying snapshot skip %d: %w", i, err)
		}
	}
	for _, ev := range sv.Events {
		if err := replayEvent(sess, ev); err != nil {
			return nil, fmt.Errorf("replaying event seq %d (%s): %w", ev.Seq, ev.Op, err)
		}
	}
	createdAt := sv.Snapshot.CreatedAt
	if createdAt.IsZero() {
		createdAt = meta.CreatedAt
	}
	if createdAt.IsZero() {
		createdAt = s.now()
	}
	ls := &liveSession{sess: sess, createdAt: createdAt, seed: sv.Snapshot.Seed}
	ls.walEvents.Store(int64(len(sv.Events)))
	if len(sv.Events) == 0 {
		ls.lastSnapshot.Store(s.now().UnixNano())
	}
	// A session restored with a WAL suffix keeps lastSnapshot at zero:
	// its durable snapshot is genuinely stale, and the age policy
	// should fold the replayed events at its first tick instead of
	// waiting a fresh SnapshotMaxAge — otherwise a restart loop
	// re-replays the same suffix on every boot.
	ls.touch(s.now())
	return ls, nil
}

// replayEvent applies one WAL event through the session's public
// methods — the identical code path the original request took.
func replayEvent(sess *jim.Session, ev store.Event) error {
	switch ev.Op {
	case store.OpLabel:
		l := jim.Negative
		if ev.Label == "+" {
			l = jim.Positive
		}
		_, err := sess.Answer(ev.Index, l)
		return err
	case store.OpSkip:
		return sess.Skip(ev.Index)
	case store.OpClear:
		sess.Core().ClearSkips()
		return nil
	case store.OpAppend:
		tuples := make([]jim.Tuple, len(ev.Rows))
		for ri, row := range ev.Rows {
			t := make(jim.Tuple, len(row))
			for c, tag := range row {
				v, err := values.FromTag(tag)
				if err != nil {
					return fmt.Errorf("row %d column %d: %w", ri, c, err)
				}
				t[c] = v
			}
			tuples[ri] = t
		}
		_, err := sess.Append(tuples)
		return err
	}
	return fmt.Errorf("unknown op %q", ev.Op)
}

// numericID extracts the numeric suffix of a server-assigned session
// id ("s0042" → 42) so Restore can advance the id counter past every
// restored session.
func numericID(id string) (int64, bool) {
	if !strings.HasPrefix(id, "s") {
		return 0, false
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
