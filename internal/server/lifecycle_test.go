package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

// fakeClock is an injectable clock for lifecycle tests.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func lifecycleServer(cfg server.Config) (*server.Server, *httptest.Server, *fakeClock) {
	clk := newFakeClock()
	cfg.Now = clk.now
	srv := server.NewWith(cfg)
	return srv, httptest.NewServer(srv.Handler()), clk
}

func postSession(t *testing.T, url string) (string, int) {
	t.Helper()
	data, _ := json.Marshal(map[string]any{"csv": travelCSV})
	resp, err := http.Post(url+"/v1/sessions", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s summary
	_ = json.NewDecoder(resp.Body).Decode(&s)
	return s.ID, resp.StatusCode
}

func sessionStatus(t *testing.T, url, id string) int {
	t.Helper()
	resp, err := http.Get(url + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestIdleTTLEviction(t *testing.T) {
	ttl := 10 * time.Minute
	cases := []struct {
		name string
		// idle durations for three sessions before the sweep
		idle    []time.Duration
		evicted []bool
	}{
		{
			name:    "all fresh",
			idle:    []time.Duration{0, time.Minute, 5 * time.Minute},
			evicted: []bool{false, false, false},
		},
		{
			name:    "one expired",
			idle:    []time.Duration{15 * time.Minute, time.Minute, 0},
			evicted: []bool{true, false, false},
		},
		{
			name:    "all expired",
			idle:    []time.Duration{time.Hour, 11 * time.Minute, 10*time.Minute + time.Second},
			evicted: []bool{true, true, true},
		},
		{
			name:    "exactly at ttl evicts",
			idle:    []time.Duration{ttl, ttl - time.Second, 0},
			evicted: []bool{true, false, false},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, ts, clk := lifecycleServer(server.Config{IdleTTL: ttl})
			defer ts.Close()
			// Create sessions oldest-idle first, advancing the clock so
			// each ends up idle for tc.idle[i] at sweep time.
			ids := make([]string, len(tc.idle))
			maxIdle := tc.idle[0]
			for _, d := range tc.idle {
				if d > maxIdle {
					maxIdle = d
				}
			}
			for i, d := range tc.idle {
				clk.t = newFakeClock().t.Add(maxIdle - d)
				id, code := postSession(t, ts.URL)
				if code != http.StatusCreated {
					t.Fatalf("create %d: status %d", i, code)
				}
				ids[i] = id
			}
			clk.t = newFakeClock().t.Add(maxIdle)
			wantEvicted := 0
			for _, e := range tc.evicted {
				if e {
					wantEvicted++
				}
			}
			if got := srv.Sweep(); got != wantEvicted {
				t.Errorf("Sweep() = %d, want %d", got, wantEvicted)
			}
			for i, id := range ids {
				want := http.StatusOK
				if tc.evicted[i] {
					want = http.StatusNotFound
				}
				if got := sessionStatus(t, ts.URL, id); got != want {
					t.Errorf("session %d (%s): status %d, want %d", i, id, got, want)
				}
			}
		})
	}
}

func TestTTLAccessRefreshes(t *testing.T) {
	srv, ts, clk := lifecycleServer(server.Config{IdleTTL: 10 * time.Minute})
	defer ts.Close()
	id, _ := postSession(t, ts.URL)
	// Touch the session every 6 minutes; it must survive sweeps far
	// beyond the TTL because it is never idle that long.
	for i := 0; i < 5; i++ {
		clk.advance(6 * time.Minute)
		if got := sessionStatus(t, ts.URL, id); got != http.StatusOK {
			t.Fatalf("round %d: status %d", i, got)
		}
		if n := srv.Sweep(); n != 0 {
			t.Fatalf("round %d: swept %d sessions", i, n)
		}
	}
	// Now go idle past the TTL.
	clk.advance(11 * time.Minute)
	if n := srv.Sweep(); n != 1 {
		t.Errorf("final sweep = %d, want 1", n)
	}
}

func TestSweepDisabledWithoutTTL(t *testing.T) {
	srv, ts, clk := lifecycleServer(server.Config{})
	defer ts.Close()
	postSession(t, ts.URL)
	clk.advance(1000 * time.Hour)
	if n := srv.Sweep(); n != 0 {
		t.Errorf("sweep with no TTL evicted %d", n)
	}
}

func TestSessionCap(t *testing.T) {
	cases := []struct {
		name       string
		max        int
		creates    int
		wantOK     int
		wantReject int
		deleteOne  bool // delete a session, then retry one create
		wantRefill bool
	}{
		{name: "unlimited", max: 0, creates: 10, wantOK: 10},
		{name: "cap 3", max: 3, creates: 5, wantOK: 3, wantReject: 2},
		{name: "cap 1", max: 1, creates: 3, wantOK: 1, wantReject: 2},
		{name: "delete frees a slot", max: 2, creates: 3, wantOK: 2, wantReject: 1,
			deleteOne: true, wantRefill: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts, _ := lifecycleServer(server.Config{MaxSessions: tc.max})
			defer ts.Close()
			var ok, rejected int
			var ids []string
			for i := 0; i < tc.creates; i++ {
				id, code := postSession(t, ts.URL)
				switch code {
				case http.StatusCreated:
					ok++
					ids = append(ids, id)
				case http.StatusTooManyRequests:
					rejected++
				default:
					t.Fatalf("create %d: unexpected status %d", i, code)
				}
			}
			if ok != tc.wantOK || rejected != tc.wantReject {
				t.Errorf("ok=%d rejected=%d, want ok=%d rejected=%d", ok, rejected, tc.wantOK, tc.wantReject)
			}
			if tc.deleteOne {
				req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+ids[0], nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				_, code := postSession(t, ts.URL)
				if gotRefill := code == http.StatusCreated; gotRefill != tc.wantRefill {
					t.Errorf("create after delete: status %d, refill=%v want %v", code, gotRefill, tc.wantRefill)
				}
			}
		})
	}
}

// TestCapSweepInteraction: a full table of expired sessions must not
// lock out new users — create at the cap sweeps expired sessions and
// admits the newcomer.
func TestCapSweepInteraction(t *testing.T) {
	_, ts, clk := lifecycleServer(server.Config{MaxSessions: 2, IdleTTL: 10 * time.Minute})
	defer ts.Close()
	for i := 0; i < 2; i++ {
		if _, code := postSession(t, ts.URL); code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
	}
	if _, code := postSession(t, ts.URL); code != http.StatusTooManyRequests {
		t.Fatalf("over-cap create: status %d", code)
	}
	clk.advance(11 * time.Minute)
	// Both old sessions are now expired; the create should evict them
	// and succeed without an explicit Sweep call.
	if _, code := postSession(t, ts.URL); code != http.StatusCreated {
		t.Errorf("create after expiry: status %d, want 201", code)
	}
}

func TestJanitorEvicts(t *testing.T) {
	clk := newFakeClock()
	srv := server.NewWith(server.Config{IdleTTL: time.Minute, Now: clk.now})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	postSession(t, ts.URL)
	clk.advance(2 * time.Minute)
	stop := srv.StartJanitor(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		var list struct {
			Total int `json:"total"`
		}
		resp, err := http.Get(ts.URL + "/v1/sessions")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if list.Total == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("janitor did not evict the expired session")
}
