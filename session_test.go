package jim_test

import (
	"errors"
	"net/http"
	"strings"
	"testing"

	jim "repro"
)

const sessionTestCSV = `From,To,Airline,City,Discount
Paris,Lille,AF,NYC,AA
Paris,Lille,AF,Paris,None
Paris,Lille,AF,Lille,AF
Lille,NYC,AA,NYC,AA
Lille,NYC,AA,Paris,None
Lille,NYC,AA,Lille,AF
NYC,Paris,AA,NYC,AA
NYC,Paris,AA,Paris,None
NYC,Paris,AA,Lille,AF
Paris,NYC,AF,NYC,AA
Paris,NYC,AF,Paris,None
Paris,NYC,AF,Lille,AF
`

func travelSession(t *testing.T, opts ...jim.SessionOption) *jim.Session {
	t.Helper()
	rel, err := jim.ReadCSV(strings.NewReader(sessionTestCSV))
	if err != nil {
		t.Fatal(err)
	}
	s, err := jim.NewSession(rel, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func travelGoal(t *testing.T, s *jim.Session) jim.Predicate {
	t.Helper()
	goal, err := jim.PredicateFromAtoms(s.Relation().Schema(), [][2]string{
		{"To", "City"}, {"Airline", "Discount"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return goal
}

// TestSessionPullDialogue drives a full inference through the public
// pull API: Propose, Answer, Result.
func TestSessionPullDialogue(t *testing.T) {
	s := travelSession(t, jim.WithStrategy("lookahead-maxmin"))
	goal := travelGoal(t, s)
	questions := 0
	for {
		i, ok := s.Propose()
		if !ok {
			break
		}
		label := jim.Negative
		if jim.Selects(goal, s.Relation().Tuple(i)) {
			label = jim.Positive
		}
		if _, err := s.Answer(i, label); err != nil {
			t.Fatal(err)
		}
		if questions++; questions > s.Relation().Len() {
			t.Fatal("session asked more questions than tuples")
		}
	}
	if !s.Done() {
		t.Fatal("session did not converge")
	}
	if got := s.Result(); !got.Equal(goal) {
		t.Errorf("inferred %v, want %v", got, goal)
	}
	if questions > 6 {
		t.Errorf("lookahead-maxmin needed %d questions on travel", questions)
	}
	p := s.Progress()
	if p.Informative != 0 || p.Explicit != questions {
		t.Errorf("progress = %+v", p)
	}
}

// TestSessionOptions exercises the functional options and their
// validation errors.
func TestSessionOptions(t *testing.T) {
	rel, err := jim.ReadCSV(strings.NewReader(sessionTestCSV))
	if err != nil {
		t.Fatal(err)
	}
	_, err = jim.NewSession(rel, jim.WithStrategy("bogus"))
	if jim.CodeOf(err) != jim.CodeUnknownStrategy {
		t.Errorf("unknown strategy: %v (code %q)", err, jim.CodeOf(err))
	}
	if !errors.Is(err, jim.ErrUnknownStrategy) {
		t.Errorf("errors.Is(err, ErrUnknownStrategy) = false for %v", err)
	}
	rel3, _ := jim.ReadCSV(strings.NewReader(sessionTestCSV))
	if _, err := jim.NewSession(rel3, jim.WithStrategy("")); jim.CodeOf(err) != jim.CodeBadInput {
		t.Errorf("empty strategy: %v", err)
	}
	rel4, _ := jim.ReadCSV(strings.NewReader(sessionTestCSV))
	s, err := jim.NewSession(rel4,
		jim.WithStrategy("random"),
		jim.WithSeed(7),
		jim.WithConflictPolicy(jim.SkipOnConflict),
		jim.WithRedeferLimit(-1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Strategy() != "random" {
		t.Errorf("strategy = %q", s.Strategy())
	}
}

// TestSessionErrorTaxonomy checks codes, sentinels, and HTTP mapping.
func TestSessionErrorTaxonomy(t *testing.T) {
	s := travelSession(t)
	_, err := s.Answer(99, jim.Positive)
	if jim.CodeOf(err) != jim.CodeOutOfRange || !errors.Is(err, jim.ErrOutOfRange) {
		t.Errorf("out of range: %v", err)
	}
	if _, err := s.Answer(0, jim.Unlabeled); jim.CodeOf(err) != jim.CodeBadInput {
		t.Errorf("non-explicit label: %v", err)
	}
	if _, err := s.Answer(11, jim.Positive); err != nil {
		t.Fatal(err)
	}
	_, err = s.Answer(11, jim.Negative)
	if !errors.Is(err, jim.ErrAlreadyLabeled) {
		t.Errorf("relabel: %v", err)
	}
	_, err = s.Answer(2, jim.Negative)
	if !errors.Is(err, jim.ErrInconsistent) {
		t.Errorf("inconsistent: %v", err)
	}
	var je *jim.Error
	if !errors.As(err, &je) || je.Code != jim.CodeInconsistent {
		t.Errorf("errors.As(*jim.Error) failed for %v", err)
	}
	// Status mapping of the wire contract.
	statuses := map[jim.ErrorCode]int{
		jim.CodeInconsistent:    http.StatusConflict,
		jim.CodeAlreadyLabeled:  http.StatusUnprocessableEntity,
		jim.CodeSchemaMismatch:  http.StatusConflict,
		jim.CodeUnknownStrategy: http.StatusBadRequest,
		jim.CodeSessionDone:     http.StatusConflict,
		jim.CodeOutOfRange:      http.StatusBadRequest,
		jim.CodeBadInput:        http.StatusBadRequest,
		jim.CodeNotFound:        http.StatusNotFound,
		jim.CodeTooManySessions: http.StatusTooManyRequests,
		jim.CodeBodyTooLarge:    http.StatusRequestEntityTooLarge,
		jim.CodeInternal:        http.StatusInternalServerError,
	}
	for code, want := range statuses {
		if got := code.HTTPStatus(); got != want {
			t.Errorf("%s -> %d, want %d", code, got, want)
		}
	}
	if jim.CodeOf(errors.New("plain")) != "" {
		t.Error("CodeOf(plain error) != \"\"")
	}
}

// TestSessionSkipAndAppend exercises skip routing and streaming
// arrivals through the facade, including the parse helpers.
func TestSessionSkipAndAppend(t *testing.T) {
	s := travelSession(t)
	i, ok := s.Propose()
	if !ok {
		t.Fatal("no proposal")
	}
	if err := s.Skip(i); err != nil {
		t.Fatal(err)
	}
	j, ok := s.Propose()
	if !ok || j == i {
		t.Errorf("after skip Propose = (%d,%v), skipped %d", j, ok, i)
	}

	rows, err := s.ParseRows([][]string{{"Lyon", "Nice", "AF", "Nice", "AF"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(rows); err != nil {
		t.Fatal(err)
	}
	if s.Relation().Len() != 13 {
		t.Errorf("after append len = %d", s.Relation().Len())
	}

	if _, err := s.ParseRows([][]string{{"too", "short"}}); jim.CodeOf(err) != jim.CodeSchemaMismatch {
		t.Errorf("short row: %v", err)
	}
	if _, err := s.ParseCSV("Wrong,Header\na,b\n"); !errors.Is(err, jim.ErrSchemaMismatch) {
		t.Errorf("wrong csv header: %v", err)
	}
	if _, err := s.ParseCSV("  "); jim.CodeOf(err) != jim.CodeBadInput {
		t.Errorf("empty csv: %v", err)
	}
	tuples, err := s.ParseCSV("From,To,Airline,City,Discount\nOslo,Rome,SK,Rome,SK\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(tuples); err != nil {
		t.Fatal(err)
	}
	if s.Relation().Len() != 14 {
		t.Errorf("after csv append len = %d", s.Relation().Len())
	}
}

// TestSessionExplain checks Explain round-trips through the facade.
func TestSessionExplain(t *testing.T) {
	s := travelSession(t)
	if _, err := s.Answer(11, jim.Positive); err != nil {
		t.Fatal(err)
	}
	e, err := s.Explain(2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Label != jim.ImpliedPositive {
		t.Errorf("explain(2).Label = %v", e.Label)
	}
	if _, err := s.Explain(-1); !errors.Is(err, jim.ErrOutOfRange) {
		t.Errorf("explain out of range: %v", err)
	}
}
