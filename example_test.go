package jim_test

import (
	"errors"
	"fmt"
	"strings"

	jim "repro"
)

// ExampleNewSession is the library quickstart: open a session over a
// denormalized instance, loop proposals through a labeler (here a goal
// oracle; in an application, a human), and read the inferred join
// predicate.
func ExampleNewSession() {
	const csv = `From,To,Airline,City,Discount
Paris,Lille,AF,NYC,AA
Paris,Lille,AF,Paris,None
Paris,Lille,AF,Lille,AF
Lille,NYC,AA,NYC,AA
Lille,NYC,AA,Paris,None
Lille,NYC,AA,Lille,AF
NYC,Paris,AA,NYC,AA
NYC,Paris,AA,Paris,None
NYC,Paris,AA,Lille,AF
`
	rel, err := jim.ReadCSV(strings.NewReader(csv))
	if err != nil {
		panic(err)
	}
	// The user's intent, which the dialogue will reconstruct: tuples
	// where the flight's destination is the hotel's city.
	goal, err := jim.PredicateFromAtoms(rel.Schema(), [][2]string{{"To", "City"}})
	if err != nil {
		panic(err)
	}
	sess, err := jim.NewSession(rel)
	if err != nil {
		panic(err)
	}
	questions := 0
	for {
		i, ok := sess.Propose()
		if !ok {
			break
		}
		label := jim.Negative
		if jim.Selects(goal, rel.Tuple(i)) {
			label = jim.Positive
		}
		if _, err := sess.Answer(i, label); err != nil {
			panic(err)
		}
		questions++
	}
	fmt.Printf("converged after %d questions\n", questions)
	fmt.Println(sess.Result().FormatAtoms(rel.Schema().Names()))
	// Output:
	// converged after 4 questions
	// To=City
}

// ExampleSession_Append shows streaming ingestion: tuples arriving
// mid-session are parsed under the session's pinned typing and
// classified against the current hypothesis the moment they land —
// arrivals whose label is already implied never reach the user.
func ExampleSession_Append() {
	rel, typing, err := jim.ReadCSVTyped(strings.NewReader("a,b,c\n1,1,2\n1,2,2\n"), jim.CSVOptions{})
	if err != nil {
		panic(err)
	}
	sess, err := jim.NewSession(rel, jim.WithTyping(typing))
	if err != nil {
		panic(err)
	}
	// Label what we have: a=b holds on the positive tuple only.
	if _, err := sess.Answer(0, jim.Positive); err != nil {
		panic(err)
	}
	if _, err := sess.Answer(1, jim.Negative); err != nil {
		panic(err)
	}
	// More data arrives. ParseRows decodes it exactly like the
	// creation CSV; Append classifies it on landing.
	tuples, err := sess.ParseRows([][]string{{"3", "3", "4"}, {"3", "4", "4"}})
	if err != nil {
		panic(err)
	}
	implied, err := sess.Append(tuples)
	if err != nil {
		panic(err)
	}
	p := sess.Progress()
	fmt.Printf("instance grew to %d tuples; %d arrivals labeled on arrival\n", p.Total, len(implied))
	fmt.Println(sess.Result().FormatAtoms(sess.Relation().Schema().Names()))
	// Output:
	// instance grew to 4 tuples; 2 arrivals labeled on arrival
	// a=b
}

// ExampleError shows the error taxonomy: every failure carries a
// stable code, matchable with errors.Is against the package sentinels
// or switchable via CodeOf — the same codes the HTTP envelope serves,
// so embedded and remote callers dispatch on identical constants.
func ExampleError() {
	rel, err := jim.ReadCSV(strings.NewReader("a,b\n1,1\n1,2\n"))
	if err != nil {
		panic(err)
	}
	sess, err := jim.NewSession(rel)
	if err != nil {
		panic(err)
	}
	if _, err := sess.Answer(0, jim.Positive); err != nil {
		panic(err)
	}
	// Relabeling an explicitly labeled tuple is refused with a typed
	// error.
	_, err = sess.Answer(0, jim.Negative)
	fmt.Println(errors.Is(err, jim.ErrAlreadyLabeled))
	fmt.Println(jim.CodeOf(err))
	// An out-of-range index carries a different code.
	_, err = sess.Answer(99, jim.Positive)
	fmt.Println(jim.CodeOf(err))
	// Unknown strategies are rejected at session construction.
	_, err = jim.NewSession(rel.Clone(), jim.WithStrategy("nope"))
	fmt.Println(errors.Is(err, jim.ErrUnknownStrategy))
	// Output:
	// true
	// already_labeled
	// out_of_range
	// true
}
