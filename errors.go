package jim

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/strategy"
)

// ErrorCode is a stable, machine-readable identifier for every failure
// the JIM API can report. Codes — not messages — are the contract:
// they name the wire values of the versioned HTTP error envelope
// ({"error":{"code","message"}}) and the cases a library caller can
// switch on, so messages may be reworded without breaking clients.
type ErrorCode string

// Library error codes, raised by Session methods.
const (
	// CodeInconsistent: the label contradicts earlier labels — no join
	// predicate is consistent with the combined set.
	CodeInconsistent ErrorCode = "inconsistent_label"
	// CodeAlreadyLabeled: the tuple already carries an explicit label.
	CodeAlreadyLabeled ErrorCode = "already_labeled"
	// CodeSchemaMismatch: tuples do not match the session's schema.
	CodeSchemaMismatch ErrorCode = "schema_mismatch"
	// CodeUnknownStrategy: no strategy registered under that name.
	CodeUnknownStrategy ErrorCode = "unknown_strategy"
	// CodeSessionDone: the session has converged; nothing to answer.
	CodeSessionDone ErrorCode = "session_done"
	// CodeOutOfRange: a tuple index outside the instance.
	CodeOutOfRange ErrorCode = "out_of_range"
	// CodeBadInput: malformed input (unparsable CSV, bad label string,
	// invalid option value).
	CodeBadInput ErrorCode = "bad_input"
)

// Transport error codes, raised only by the HTTP service but defined
// here so one taxonomy covers the whole wire contract.
const (
	// CodeNotFound: no session with that id.
	CodeNotFound ErrorCode = "not_found"
	// CodeTooManySessions: the server's live-session cap was hit.
	CodeTooManySessions ErrorCode = "too_many_sessions"
	// CodeBodyTooLarge: the request body exceeded the configured cap.
	CodeBodyTooLarge ErrorCode = "body_too_large"
	// CodeNotOwner: in cluster mode, this node does not own the
	// session. Over HTTP it is served as a 307 redirect whose
	// Location and X-Jim-Owner headers name the owner; over the wire
	// protocol the error message carries "nodeID=address".
	CodeNotOwner ErrorCode = "not_owner"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
)

// HTTPStatus maps the code onto the status the /v1 API serves it with.
// Unknown codes map to 500.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeInconsistent, CodeSchemaMismatch, CodeSessionDone:
		return http.StatusConflict // 409
	case CodeAlreadyLabeled:
		return http.StatusUnprocessableEntity // 422
	case CodeUnknownStrategy, CodeOutOfRange, CodeBadInput:
		return http.StatusBadRequest // 400
	case CodeNotFound:
		return http.StatusNotFound // 404
	case CodeTooManySessions:
		return http.StatusTooManyRequests // 429
	case CodeBodyTooLarge:
		return http.StatusRequestEntityTooLarge // 413
	case CodeNotOwner:
		return http.StatusTemporaryRedirect // 307
	}
	return http.StatusInternalServerError
}

// Error is the typed error of the JIM API: a stable code, a
// human-readable message, and the underlying cause when one exists.
// Errors compare by code: errors.Is(err, jim.ErrInconsistent) holds
// for any Error carrying CodeInconsistent, however deeply wrapped.
type Error struct {
	Code    ErrorCode
	Message string
	cause   error
}

// Error renders "jim: <code>: <message>".
func (e *Error) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("jim: %s", e.Code)
	}
	return fmt.Sprintf("jim: %s: %s", e.Code, e.Message)
}

// Unwrap exposes the underlying cause (possibly nil) so errors.Is
// also matches the low-level sentinels of the internal packages.
func (e *Error) Unwrap() error { return e.cause }

// Is makes two Errors equivalent when their codes agree, so the
// package-level sentinels below work with errors.Is.
func (e *Error) Is(target error) bool {
	var t *Error
	return errors.As(target, &t) && t.Code == e.Code
}

// Sentinel errors, one per library code, for errors.Is dispatch.
var (
	// ErrInconsistent reports a label contradicting previous labels.
	ErrInconsistent = &Error{Code: CodeInconsistent, Message: "label is inconsistent with previous labels"}
	// ErrAlreadyLabeled reports relabeling an explicitly labeled tuple.
	ErrAlreadyLabeled = &Error{Code: CodeAlreadyLabeled, Message: "tuple already labeled explicitly"}
	// ErrSchemaMismatch reports tuples that do not fit the session schema.
	ErrSchemaMismatch = &Error{Code: CodeSchemaMismatch, Message: "tuples do not match the session schema"}
	// ErrUnknownStrategy reports an unrecognized strategy name.
	ErrUnknownStrategy = &Error{Code: CodeUnknownStrategy, Message: "unknown strategy"}
	// ErrSessionDone reports interaction with a converged session.
	ErrSessionDone = &Error{Code: CodeSessionDone, Message: "session has converged"}
	// ErrOutOfRange reports a tuple index outside the instance.
	ErrOutOfRange = &Error{Code: CodeOutOfRange, Message: "tuple index out of range"}
)

// newError builds a typed error with a formatted message.
func newError(code ErrorCode, cause error, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...), cause: cause}
}

// CodeOf extracts the ErrorCode carried anywhere in err's chain, or ""
// when err carries none.
func CodeOf(err error) ErrorCode {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return ""
}

// wrapCoreErr lifts an error from the internal engine layers into the
// taxonomy, preserving the cause chain. nil passes through; errors
// with no taxonomy mapping come back as CodeBadInput.
func wrapCoreErr(err error) error {
	if err == nil {
		return nil
	}
	code := CodeBadInput
	switch {
	case errors.Is(err, core.ErrInconsistent):
		code = CodeInconsistent
	case errors.Is(err, core.ErrAlreadyLabeled):
		code = CodeAlreadyLabeled
	case errors.Is(err, core.ErrSchemaMismatch):
		code = CodeSchemaMismatch
	case errors.Is(err, core.ErrSessionDone):
		code = CodeSessionDone
	case errors.Is(err, core.ErrOutOfRange):
		code = CodeOutOfRange
	case errors.Is(err, strategy.ErrUnknown):
		code = CodeUnknownStrategy
	}
	return &Error{Code: code, Message: err.Error(), cause: err}
}
