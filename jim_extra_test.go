package jim_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	jim "repro"
	"repro/internal/workload"
)

func TestParseGoal(t *testing.T) {
	rel := workload.Travel()
	goal, err := jim.ParseGoal(rel.Schema(), "To=City, Airline=Discount")
	if err != nil {
		t.Fatal(err)
	}
	if !goal.Equal(workload.TravelQ2()) {
		t.Errorf("parsed %v, want Q2", goal)
	}
	// Transitive closure through shared attributes.
	goal, err = jim.ParseGoal(rel.Schema(), "From=To,To=City")
	if err != nil {
		t.Fatal(err)
	}
	if !goal.SameBlock(0, 3) {
		t.Error("transitivity missing")
	}
	// Empty spec is the bottom predicate.
	goal, err = jim.ParseGoal(rel.Schema(), "")
	if err != nil || !goal.IsBottom() {
		t.Errorf("empty spec = %v, %v", goal, err)
	}
	if _, err := jim.ParseGoal(rel.Schema(), "To<City"); err == nil {
		t.Error("malformed atom accepted")
	}
	if _, err := jim.ParseGoal(rel.Schema(), "To=Nowhere"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestParsePredicate(t *testing.T) {
	p, err := jim.ParsePredicate("{0}{1,3}{2,4}")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(workload.TravelQ2()) {
		t.Errorf("parsed %v", p)
	}
	if _, err := jim.ParsePredicate("{0}{0}"); err == nil {
		t.Error("malformed predicate accepted")
	}
}

func TestSessionRoundTripThroughFacade(t *testing.T) {
	rel := workload.Travel()
	st, err := jim.NewState(rel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply(2, jim.Positive); err != nil {
		t.Fatal(err)
	}
	meta := jim.SessionMeta{Strategy: "random", CreatedAt: time.Unix(0, 0).UTC(), Note: "x"}
	var buf bytes.Buffer
	if err := jim.SaveSession(&buf, st, meta); err != nil {
		t.Fatal(err)
	}
	st2, meta2, err := jim.LoadSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta2 != meta {
		t.Errorf("meta = %+v", meta2)
	}
	if st2.Label(2) != jim.Positive {
		t.Errorf("label lost: %v", st2.Label(2))
	}
}

func TestHesitantOracleThroughFacade(t *testing.T) {
	rel := workload.Travel()
	st, err := jim.NewState(rel)
	if err != nil {
		t.Fatal(err)
	}
	lab := jim.HesitantOracle(jim.GoalOracle(workload.TravelQ2()), 0.3, 3)
	eng := jim.NewEngine(st, jim.MustStrategy("lookahead-maxmin", 0), lab)
	eng.RedeferLimit = 64
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("hesitant run did not converge (abstentions=%d)", res.Abstentions)
	}
}

func TestScriptedOracleThroughFacade(t *testing.T) {
	rel := workload.Travel()
	st, err := jim.NewState(rel)
	if err != nil {
		t.Fatal(err)
	}
	lab := jim.ScriptedOracle(map[int]jim.Label{2: jim.Positive})
	eng := jim.NewEngine(st, jim.MustStrategy("local-most-specific", 0), lab)
	eng.MaxSteps = 1
	res, err := eng.Run()
	if err != nil && !strings.Contains(err.Error(), "no scripted answer") {
		t.Fatal(err)
	}
	_ = res
}

func TestVersionSpaceThroughFacade(t *testing.T) {
	rel := workload.Travel()
	st, err := jim.NewState(rel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply(2, jim.Positive); err != nil {
		t.Fatal(err)
	}
	vs, err := st.VersionSpace(0)
	if err != nil {
		t.Fatal(err)
	}
	var _ jim.VersionSpace = vs
	if vs.Decided() {
		t.Error("one label decided the space")
	}
}
