// Integration matrix: every practical strategy against every workload
// family and interaction mode, asserting convergence, instance
// equivalence with the goal, and engine invariants — the end-to-end
// safety net over the whole stack.
package jim_test

import (
	"bytes"
	"math/rand"
	"testing"

	jim "repro"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/partition"
	"repro/internal/setgame"
	"repro/internal/strategy"
	"repro/internal/workload"
)

type scenario struct {
	name string
	rel  *jim.Relation
	goal jim.Predicate
}

func integrationScenarios(t *testing.T) []scenario {
	t.Helper()
	var out []scenario
	out = append(out,
		scenario{"travel/Q1", workload.Travel(), workload.TravelQ1()},
		scenario{"travel/Q2", workload.Travel(), workload.TravelQ2()},
	)
	rel, goal, err := workload.Synthetic(workload.SynthConfig{
		Attrs: 6, Tuples: 150, Seed: 42, ExtraMerges: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, scenario{"synthetic/6x150", rel, goal})

	star, err := workload.NewStar(workload.StarConfig{
		Dims: 2, DimRows: 5, DimAttrs: 1, FactAttrs: 1, Rows: 80, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, scenario{"star/2dims", star.Instance, star.Goal})

	rng := rand.New(rand.NewSource(11))
	left, err := setgame.Sample(rng, 8)
	if err != nil {
		t.Fatal(err)
	}
	right, err := setgame.Sample(rng, 8)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := setgame.PairInstance(left, right)
	if err != nil {
		t.Fatal(err)
	}
	sGoal, err := setgame.SameFeatureGoal("color", "shading")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, scenario{"setgame/8x8", pairs, sGoal})

	zipf, err := workload.Zipf(workload.ZipfConfig{Attrs: 5, Tuples: 120, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, scenario{"zipf/5x120", zipf, partition.MustFromBlocks(5, [][]int{{1, 3}})})

	dup, err := workload.WithDuplicates(rel, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, scenario{"duplicates/400", dup, goal})
	return out
}

func TestIntegrationMatrixMode4(t *testing.T) {
	for _, sc := range integrationScenarios(t) {
		for _, s := range strategy.Heuristics(99) {
			t.Run(sc.name+"/"+s.Name(), func(t *testing.T) {
				st, err := jim.NewState(sc.rel)
				if err != nil {
					t.Fatal(err)
				}
				// Tuples whose signature is ⊤ (all attributes equal)
				// are selected by every query and grayed out before
				// any label is given.
				initiallyImplied := sc.rel.Len() - st.InformativeCount()
				eng := jim.NewEngine(st, s, jim.GoalOracle(sc.goal))
				res, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatal("did not converge")
				}
				if !jim.InstanceEquivalent(sc.rel, res.Query, sc.goal) {
					t.Fatalf("inferred %v not equivalent to goal %v", res.Query, sc.goal)
				}
				if err := st.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if res.UserLabels+res.ImpliedLabels+initiallyImplied != sc.rel.Len() {
					t.Fatalf("labels %d + implied %d + initial %d != %d tuples",
						res.UserLabels, res.ImpliedLabels, initiallyImplied, sc.rel.Len())
				}
			})
		}
	}
}

func TestIntegrationMatrixModes123(t *testing.T) {
	// One representative strategy per mode across all scenarios.
	for _, sc := range integrationScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			order := make([]int, sc.rel.Len())
			for i := range order {
				order[i] = i
			}
			for mode := 1; mode <= 3; mode++ {
				st, err := jim.NewState(sc.rel)
				if err != nil {
					t.Fatal(err)
				}
				eng := jim.NewEngine(st, strategy.LookaheadMaxMin(), jim.GoalOracle(sc.goal))
				var res jim.RunResult
				switch mode {
				case 1:
					res, err = eng.RunUserOrder(order, false)
				case 2:
					res, err = eng.RunUserOrder(order, true)
				case 3:
					res, err = eng.RunTopK(3)
				}
				if err != nil {
					t.Fatalf("mode %d: %v", mode, err)
				}
				if !res.Converged {
					t.Fatalf("mode %d did not converge", mode)
				}
				if !jim.InstanceEquivalent(sc.rel, res.Query, sc.goal) {
					t.Fatalf("mode %d inferred %v", mode, res.Query)
				}
			}
		})
	}
}

// TestIntegrationSessionContinuity saves a half-finished run, reloads
// it, finishes with a different strategy, and still recovers the goal.
func TestIntegrationSessionContinuity(t *testing.T) {
	for _, sc := range integrationScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			st, err := jim.NewState(sc.rel)
			if err != nil {
				t.Fatal(err)
			}
			eng := jim.NewEngine(st, strategy.LookaheadMaxMin(), jim.GoalOracle(sc.goal))
			eng.MaxSteps = 2
			if _, err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := jim.SaveSession(&buf, st, jim.SessionMeta{}); err != nil {
				t.Fatal(err)
			}
			st2, _, err := jim.LoadSession(&buf)
			if err != nil {
				t.Fatal(err)
			}
			eng2 := jim.NewEngine(st2, strategy.LocalLeastSpecific(), jim.GoalOracle(sc.goal))
			res, err := eng2.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged || !jim.InstanceEquivalent(sc.rel, res.Query, sc.goal) {
				t.Fatalf("resumed run inferred %v", res.Query)
			}
		})
	}
}

// TestIntegrationExplainability: at convergence every tuple of every
// scenario has a non-trivial explanation consistent with its label.
func TestIntegrationExplainability(t *testing.T) {
	for _, sc := range integrationScenarios(t) {
		st, err := jim.NewState(sc.rel)
		if err != nil {
			t.Fatal(err)
		}
		eng := jim.NewEngine(st, strategy.LookaheadMaxMin(), jim.GoalOracle(sc.goal))
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sc.rel.Len(); i++ {
			e, err := st.Explain(i)
			if err != nil {
				t.Fatalf("%s: %v", sc.name, err)
			}
			switch {
			case st.Label(i).IsExplicit() && e.Kind != core.ExplainExplicit:
				t.Fatalf("%s tuple %d: explicit label explained as %v", sc.name, i, e.Kind)
			case st.Label(i) == core.ImpliedNegative && e.Kind != core.ExplainImpliedNegative:
				t.Fatalf("%s tuple %d: implied negative explained as %v", sc.name, i, e.Kind)
			}
		}
	}
}

// TestIntegrationOracleAgreement: the oracle's labels agree with
// Selects for every scenario tuple — the glue between the labeling
// and evaluation halves of the system.
func TestIntegrationOracleAgreement(t *testing.T) {
	for _, sc := range integrationScenarios(t) {
		st, err := jim.NewState(sc.rel)
		if err != nil {
			t.Fatal(err)
		}
		lab := oracle.Goal(sc.goal)
		for i := 0; i < sc.rel.Len() && i < 50; i++ {
			got, err := lab.Label(st, i)
			if err != nil {
				t.Fatal(err)
			}
			want := jim.Selects(sc.goal, sc.rel.Tuple(i))
			if got.IsPositive() != want {
				t.Fatalf("%s tuple %d: oracle %v, Selects %v", sc.name, i, got, want)
			}
		}
	}
}
