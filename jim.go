// Package jim is the public API of the JIM (Join Inference Machine)
// library, a from-scratch Go reproduction of "Interactive Join Query
// Inference with JIM" (Bonifati, Ciucanu, Staworko; PVLDB 7(13), 2014).
//
// JIM infers an n-ary equi-join predicate over a denormalized instance
// by asking the user Boolean membership queries: "should this tuple be
// part of the join result?". After each yes/no answer it grays out the
// tuples whose label is now implied (uninformative tuples) and uses a
// strategy to pick the next most informative tuple, so the goal query
// is identified with a minimal number of interactions.
//
// # Quick start
//
//	rel, _ := jim.ReadCSV(file)            // denormalized instance
//	st, _ := jim.NewState(rel)             // inference state
//	eng := jim.NewEngine(st,
//	    jim.MustStrategy("lookahead-maxmin", 0),
//	    jim.InteractiveUser(os.Stdin, os.Stdout))
//	res, _ := eng.Run()                    // interactive loop (Fig. 2)
//	sql, _ := jim.SelectSQL("t", rel.Schema(), res.Query)
//
// For programmatic users (experiments, crowdsourcing simulations) the
// oracle labelers in this package answer according to a known goal
// query, optionally with noise.
//
// The deeper layers are available underneath this facade:
// internal/core (engine), internal/partition (the predicate lattice),
// internal/strategy, internal/oracle, internal/crowd, internal/relalg,
// internal/sqlgen, internal/workload, internal/setgame, and
// internal/experiments for the paper's figures.
package jim

import (
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/partition"
	"repro/internal/relalg"
	"repro/internal/relation"
	"repro/internal/sqlgen"
	"repro/internal/strategy"
	"repro/internal/values"
)

// Core data types re-exported from the implementation packages.
type (
	// Value is a typed scalar (NULL, bool, int, float, string).
	Value = values.Value
	// Tuple is an ordered list of values.
	Tuple = relation.Tuple
	// Schema is an ordered list of distinct attribute names.
	Schema = relation.Schema
	// Relation is an in-memory relation with bag semantics.
	Relation = relation.Relation
	// Predicate is an equi-join predicate, canonically a partition of
	// the attribute set: attributes in one block must be equal.
	Predicate = partition.P
	// State is the inference state: instance, labels, and the
	// consistent-hypothesis summary.
	State = core.State
	// Engine drives the interactive membership-query loop.
	Engine = core.Engine
	// RunResult summarizes an interactive session.
	RunResult = core.RunResult
	// StepStat records one user interaction.
	StepStat = core.StepStat
	// Label classifies a tuple (explicit or implied, positive or
	// negative).
	Label = core.Label
	// Progress summarizes labeling progress for UIs.
	Progress = core.Progress
	// Picker is a strategy choosing the next informative tuple.
	Picker = core.Picker
	// KPicker additionally ranks the top-k informative tuples.
	KPicker = core.KPicker
	// Labeler answers membership queries (a user, oracle, or crowd).
	Labeler = core.Labeler
	// CSVOptions controls CSV import.
	CSVOptions = relation.CSVOptions
	// Typing records per-column parsing rules of a typed CSV header;
	// sessions pin it so streamed-in cells parse like creation cells.
	Typing = relation.Typing
	// Explanation justifies a tuple's current label ("why is this
	// grayed out?").
	Explanation = core.Explanation
	// AnswerOutcome reports what one accepted Session answer did.
	AnswerOutcome = core.AnswerOutcome
	// ConflictPolicy decides what a session does with a label that
	// contradicts earlier labels.
	ConflictPolicy = core.ConflictPolicy
	// JoinOn is an equality condition for EquiJoin.
	JoinOn = relalg.JoinOn
)

// Labels.
const (
	Unlabeled       = core.Unlabeled
	Positive        = core.Positive
	Negative        = core.Negative
	ImpliedPositive = core.ImpliedPositive
	ImpliedNegative = core.ImpliedNegative
)

// ErrStopped is returned by labelers when the user quits; engine runs
// report it as RunResult.Stopped rather than an error. The taxonomy of
// API failures lives in errors.go (Error, ErrorCode, and the
// per-code sentinels such as ErrInconsistent).
var ErrStopped = core.ErrStopped

// Conflict policies for engines driven by noisy labelers.
const (
	FailOnConflict = core.FailOnConflict
	SkipOnConflict = core.SkipOnConflict
)

// NewSchema builds a schema, rejecting empty or duplicate names.
func NewSchema(names ...string) (*Schema, error) { return relation.NewSchema(names...) }

// NewRelation returns an empty relation over the schema.
func NewRelation(schema *Schema) *Relation { return relation.New(schema) }

// ReadCSV reads a relation from CSV; see relation.ReadCSV for header
// type annotations ("price:float").
func ReadCSV(r io.Reader) (*Relation, error) { return relation.ReadCSV(r, relation.CSVOptions{}) }

// ReadCSVWith reads a relation from CSV with explicit options.
func ReadCSVWith(r io.Reader, opts CSVOptions) (*Relation, error) { return relation.ReadCSV(r, opts) }

// ReadCSVTyped reads a relation from CSV and returns the per-column
// typing its header established — hand it to WithTyping so tuples
// streamed into the session later parse exactly like creation cells.
func ReadCSVTyped(r io.Reader, opts CSVOptions) (*Relation, *Typing, error) {
	return relation.ReadCSVTyped(r, opts)
}

// WriteCSV writes a relation as CSV.
func WriteCSV(w io.Writer, rel *Relation) error { return relation.WriteCSV(w, rel) }

// NewState indexes a denormalized instance for inference.
func NewState(rel *Relation) (*State, error) {
	st, err := core.NewState(rel)
	if err != nil {
		return nil, wrapCoreErr(err)
	}
	return st, nil
}

// NewEngine builds an interactive engine over a state, a strategy, and
// a labeler.
func NewEngine(st *State, picker Picker, labeler Labeler) *Engine {
	return core.NewEngine(st, picker, labeler)
}

// Strategies lists the available strategy names.
func Strategies() []string { return strategy.Names() }

// Strategy builds a strategy by name ("random", "local-most-specific",
// "local-least-specific", "lookahead-maxmin", "lookahead-expected",
// "lookahead-entropy", "optimal"). The seed feeds the random strategy.
// Unrecognized names fail with CodeUnknownStrategy.
func Strategy(name string, seed int64) (KPicker, error) {
	s, err := strategy.ByName(name, seed)
	if err != nil {
		return nil, wrapCoreErr(err)
	}
	return s, nil
}

// MustStrategy is Strategy that panics on an unknown name.
func MustStrategy(name string, seed int64) KPicker {
	s, err := strategy.ByName(name, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// GoalOracle returns a labeler that answers according to a goal
// predicate — the "program that labels tuples w.r.t. a goal join
// query" used in the paper's experiments.
func GoalOracle(goal Predicate) Labeler { return oracle.Goal(goal) }

// NoisyOracle wraps a labeler, flipping each answer with probability
// flip — an unreliable crowd worker.
func NoisyOracle(inner Labeler, flip float64, seed int64) Labeler {
	return oracle.Noisy(inner, flip, seed)
}

// InteractiveUser returns a labeler that prompts a human on w and
// reads y/n/q answers from r.
func InteractiveUser(r io.Reader, w io.Writer) Labeler { return oracle.Interactive(r, w) }

// Bottom returns the most general predicate over n attributes (no
// equality constraints; selects every tuple).
func Bottom(n int) Predicate { return partition.Bottom(n) }

// Top returns the most specific predicate over n attributes (all
// attributes equal).
func Top(n int) Predicate { return partition.Top(n) }

// PredicateFromPairs builds a predicate from equality atoms given as
// attribute-position pairs, closed under transitivity.
func PredicateFromPairs(n int, pairs [][2]int) (Predicate, error) {
	return partition.FromPairs(n, pairs)
}

// PredicateFromAtoms builds a predicate from equality atoms given as
// attribute-name pairs resolved against a schema.
func PredicateFromAtoms(schema *Schema, atoms [][2]string) (Predicate, error) {
	pairs := make([][2]int, len(atoms))
	for k, a := range atoms {
		idx, err := schema.Indexes(a[0], a[1])
		if err != nil {
			return Predicate{}, err
		}
		pairs[k] = [2]int{idx[0], idx[1]}
	}
	return partition.FromPairs(schema.Len(), pairs)
}

// RandomPredicate draws a uniformly random predicate over n attributes.
func RandomPredicate(r *rand.Rand, n int) Predicate { return partition.Uniform(r, n) }

// SigOf computes Eq(t): the partition induced by value equality inside
// the tuple.
func SigOf(t Tuple) Predicate { return core.SigOf(t) }

// Selects reports whether the predicate selects the tuple.
func Selects(q Predicate, t Tuple) bool { return core.Selects(q, t) }

// SelectTuples returns the indices of the tuples selected by q — the
// join result over the instance.
func SelectTuples(rel *Relation, q Predicate) []int { return core.SelectTuples(rel, q) }

// InstanceEquivalent reports whether two predicates select the same
// tuples of rel.
func InstanceEquivalent(rel *Relation, a, b Predicate) bool {
	return core.InstanceEquivalent(rel, a, b)
}

// Where renders the predicate's equality atoms as a SQL WHERE clause
// over a single denormalized table.
func Where(schema *Schema, q Predicate) (string, error) { return sqlgen.Where(schema, q) }

// SelectSQL renders the full single-table SQL query.
func SelectSQL(table string, schema *Schema, q Predicate) (string, error) {
	return sqlgen.SelectSQL(table, schema, q)
}

// JoinSQL renders the predicate as a multi-relation SQL join using
// "rel.attr" attribute-name provenance.
func JoinSQL(schema *Schema, q Predicate) (string, error) { return sqlgen.JoinSQL(schema, q) }

// GAVMapping renders the predicate as a GAV schema mapping over the
// source relations encoded in the attribute names.
func GAVMapping(target string, schema *Schema, q Predicate) (string, error) {
	return sqlgen.GAVMapping(target, schema, q)
}

// Prefix returns rel with every attribute name prefixed, the standard
// preparation before Cross.
func Prefix(rel *Relation, prefix string) *Relation { return relalg.Prefix(rel, prefix) }

// Cross returns the cross product of two relations with disjoint
// attribute names — the denormalized instance of two sources.
func Cross(a, b *Relation) (*Relation, error) { return relalg.Cross(a, b) }

// CrossAll builds the denormalized instance of several relations.
func CrossAll(rels ...*Relation) (*Relation, error) { return relalg.CrossAll(rels...) }

// EquiJoin joins two relations on explicit attribute equalities.
func EquiJoin(a, b *Relation, on []JoinOn) (*Relation, error) { return relalg.EquiJoin(a, b, on) }

// Infer runs a complete non-interactive inference: it drives the
// engine with the named strategy and a goal oracle until convergence
// and returns the session result. It is the one-call entry point used
// by experiments and examples.
func Infer(rel *Relation, goal Predicate, strategyName string, seed int64) (RunResult, error) {
	s, err := Strategy(strategyName, seed)
	if err != nil {
		return RunResult{}, err
	}
	st, err := NewState(rel)
	if err != nil {
		return RunResult{}, err
	}
	eng := core.NewEngine(st, s, oracle.Goal(goal))
	return eng.Run()
}
