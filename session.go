// Pull-based session API: the paper's Figure 2 dialogue as an object
// every transport shares. A Session proposes tuples; the caller
// answers, skips, or streams new tuples in, and reads the running
// result — the CLI, the HTTP server, and library users all program
// against this one surface, so proposal routing, conflict policy, and
// arrival parsing live in exactly one place.
package jim

import (
	"errors"
	"strings"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/strategy"
)

// DefaultStrategy is the strategy a session uses when none is chosen.
const DefaultStrategy = "lookahead-maxmin"

// sessionConfig collects the functional options of NewSession.
type sessionConfig struct {
	strategyName string
	picker       KPicker
	seed         int64
	conflict     ConflictPolicy
	typing       *Typing
	redeferLimit int
}

// SessionOption customizes a session at creation.
type SessionOption func(*sessionConfig) error

// WithStrategy selects the question strategy by name (see Strategies).
func WithStrategy(name string) SessionOption {
	return func(c *sessionConfig) error {
		if name == "" {
			return newError(CodeBadInput, nil, "empty strategy name")
		}
		c.strategyName = name
		return nil
	}
}

// WithPicker installs a custom strategy implementation, overriding
// WithStrategy. The picker must not be shared across sessions.
func WithPicker(p KPicker) SessionOption {
	return func(c *sessionConfig) error {
		if p == nil {
			return newError(CodeBadInput, nil, "nil picker")
		}
		c.picker = p
		return nil
	}
}

// WithSeed seeds the randomized strategies; deterministic strategies
// ignore it.
func WithSeed(seed int64) SessionOption {
	return func(c *sessionConfig) error { c.seed = seed; return nil }
}

// WithConflictPolicy decides what Answer does with a label that
// contradicts earlier ones: fail (default) or keep the implied label
// and report a conflict (the noisy-crowd setting).
func WithConflictPolicy(p ConflictPolicy) SessionOption {
	return func(c *sessionConfig) error {
		if p != FailOnConflict && p != SkipOnConflict {
			return newError(CodeBadInput, nil, "unknown conflict policy %d", p)
		}
		c.conflict = p
		return nil
	}
}

// WithTyping pins the per-column parsing rules used by ParseRows and
// ParseCSV, normally the typing of the CSV the session was created
// from (ReadCSVTyped). Without it, cells of streamed-in rows parse by
// per-cell inference.
func WithTyping(t *Typing) SessionOption {
	return func(c *sessionConfig) error { c.typing = t; return nil }
}

// WithRedeferLimit bounds how many times Propose re-offers tuples
// whose classes were all skipped, between answers: 0 keeps the default
// of 3, negative means unlimited (interactive transports, where the
// client explicitly skipped and can only be asked again).
func WithRedeferLimit(n int) SessionOption {
	return func(c *sessionConfig) error { c.redeferLimit = n; return nil }
}

// Session is the transport-agnostic interactive surface of JIM. All
// methods report failures as *Error with a stable code. A Session is
// not safe for concurrent use; transports that share one across
// goroutines (the HTTP server) serialize access themselves.
type Session struct {
	sess         *core.Session
	strategyName string
	typing       *relation.Typing
}

// NewSession opens an inference session over a denormalized instance.
// The session takes ownership of the relation (it grows under Append);
// callers must not mutate or share it.
func NewSession(rel *Relation, opts ...SessionOption) (*Session, error) {
	st, err := core.NewState(rel)
	if err != nil {
		return nil, wrapCoreErr(err)
	}
	return ResumeSession(st, opts...)
}

// ResumeSession opens a session over an existing inference state —
// one restored from a session file, or pre-seeded with labels.
func ResumeSession(st *State, opts ...SessionOption) (*Session, error) {
	cfg := sessionConfig{strategyName: DefaultStrategy}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	picker := cfg.picker
	if picker == nil {
		var err error
		picker, err = strategy.ByName(cfg.strategyName, cfg.seed)
		if err != nil {
			return nil, wrapCoreErr(err)
		}
	}
	typing := cfg.typing
	if typing == nil {
		typing = relation.InferenceTyping(st.Relation().Schema().Len())
	}
	sess := core.NewSession(st, picker)
	sess.OnConflict = cfg.conflict
	sess.RedeferLimit = cfg.redeferLimit
	return &Session{sess: sess, strategyName: picker.Name(), typing: typing}, nil
}

// State exposes the underlying inference state.
func (s *Session) State() *State { return s.sess.State() }

// Relation returns the instance being labeled.
func (s *Session) Relation() *Relation { return s.sess.State().Relation() }

// Strategy returns the session's strategy name.
func (s *Session) Strategy() string { return s.strategyName }

// Typing returns the pinned per-column parsing rules for arrivals.
func (s *Session) Typing() *Typing { return s.typing }

// Done reports convergence: no informative tuple remains.
func (s *Session) Done() bool { return s.sess.Done() }

// Result returns the canonical inferred query M_P — the best
// hypothesis so far mid-session, the answer at convergence.
func (s *Session) Result() Predicate { return s.sess.Result() }

// Progress returns the labeling progress summary.
func (s *Session) Progress() Progress { return s.sess.Progress() }

// Propose returns the next informative tuple to ask about, routing
// around skipped classes; ok=false means convergence (or an exhausted
// re-offer budget with every remaining class skipped).
func (s *Session) Propose() (index int, ok bool) { return s.sess.Propose() }

// TopK returns the k most informative tuples, best first. The result
// is the caller's to keep: the strategy-owned ranking buffer is copied
// here, at the public boundary, so the hot path underneath stays
// allocation-free.
func (s *Session) TopK(k int) ([]int, error) {
	out, err := s.sess.TopK(k)
	if err != nil {
		return nil, newError(CodeBadInput, err, "%v", err)
	}
	return append([]int(nil), out...), nil
}

// Answer records an explicit label for the tuple at index and returns
// what it implied. Failures carry CodeInconsistent, CodeAlreadyLabeled,
// or CodeOutOfRange; under SkipOnConflict an inconsistent label is
// reported as Outcome.Conflict instead of an error. Consistently
// labeling an uninformative tuple is allowed (it pins an implied label
// down explicitly) and reports Outcome.Wasted.
func (s *Session) Answer(index int, label Label) (AnswerOutcome, error) {
	if !label.IsExplicit() {
		return AnswerOutcome{}, newError(CodeBadInput, nil, "Answer requires an explicit label, got %v", label)
	}
	out, err := s.sess.Answer(index, label)
	if err != nil {
		return AnswerOutcome{}, wrapCoreErr(err)
	}
	return out, nil
}

// Skip defers the signature class of the tuple at index: Propose stops
// offering it until a new label or arrival batch clears the skip set,
// or every informative class is skipped and a re-offer round starts.
// Skipping a converged session fails with CodeSessionDone.
func (s *Session) Skip(index int) error {
	if err := s.sess.Skip(index); err != nil {
		return wrapCoreErr(err)
	}
	return nil
}

// Append streams new tuples into the live instance; arrivals are
// classified against the current hypothesis the moment they land, and
// the indices of arrivals whose labels were implied on arrival are
// returned. A batch that does not fit the schema fails whole with
// CodeSchemaMismatch, leaving the session untouched.
func (s *Session) Append(tuples []Tuple) (newlyImplied []int, err error) {
	newly, err := s.sess.Append(tuples)
	if err != nil {
		return nil, wrapCoreErr(err)
	}
	return newly, nil
}

// ParseRows parses raw string rows into tuples under the session's
// pinned typing, without touching the state: the decode half of a
// streaming append. Rows whose cell count does not match the schema
// fail with CodeSchemaMismatch; unparsable cells with CodeBadInput.
func (s *Session) ParseRows(rows [][]string) ([]Tuple, error) {
	schema := s.Relation().Schema()
	tuples := make([]Tuple, 0, len(rows))
	for ri, row := range rows {
		if len(row) != schema.Len() {
			return nil, newError(CodeSchemaMismatch, nil,
				"arrival row %d has %d cells, session schema %v has %d", ri, len(row), schema, schema.Len())
		}
		t := make(Tuple, len(row))
		for ci, cell := range row {
			v, err := s.typing.ParseCell(ci, cell)
			if err != nil {
				return nil, newError(CodeBadInput, err, "arrival row %d column %q: %v", ri, schema.Name(ci), err)
			}
			t[ci] = v
		}
		tuples = append(tuples, t)
	}
	return tuples, nil
}

// ParseCSV parses a CSV arrival payload (header included) into tuples
// under the session's pinned typing, without touching the state. The
// header must carry the session schema exactly; mismatches fail with
// CodeSchemaMismatch, unparsable payloads with CodeBadInput.
func (s *Session) ParseCSV(csv string) ([]Tuple, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, newError(CodeBadInput, nil, "empty csv")
	}
	arrivals, _, err := relation.ReadCSVTyped(strings.NewReader(csv), relation.CSVOptions{Typing: s.typing})
	if errors.Is(err, relation.ErrTypingMismatch) {
		// Column-count drift from the session schema: same contract as
		// any other schema mismatch.
		return nil, newError(CodeSchemaMismatch, err, "%v", err)
	}
	if err != nil {
		return nil, newError(CodeBadInput, err, "%v", err)
	}
	if !arrivals.Schema().Equal(s.Relation().Schema()) {
		return nil, newError(CodeSchemaMismatch, nil,
			"arrival schema %v does not match session schema %v", arrivals.Schema(), s.Relation().Schema())
	}
	tuples := make([]Tuple, 0, arrivals.Len())
	for i := 0; i < arrivals.Len(); i++ {
		tuples = append(tuples, arrivals.Tuple(i))
	}
	return tuples, nil
}

// Explain justifies the current label of the tuple at index.
func (s *Session) Explain(index int) (Explanation, error) {
	e, err := s.sess.Explain(index)
	if err != nil {
		return Explanation{}, wrapCoreErr(err)
	}
	return e, nil
}

// Core returns the underlying core session, for callers mixing the
// facade with the internal engine packages.
func (s *Session) Core() *core.Session { return s.sess }
