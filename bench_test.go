// Benchmarks regenerating the paper's figures (E1–E5) and the
// evaluation experiments (E6–E11), one bench per artifact, plus
// micro-benchmarks for the performance design choices documented in
// DESIGN.md §5. The HTTP service has its own load benchmark:
// `go run ./cmd/jimbench -server` (see internal/loadtest).
// Run: go test -bench=. -benchmem
package jim_test

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	jim "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/oracle"
	"repro/internal/partition"
	"repro/internal/setgame"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Trials: 3, Quick: true}
}

// benchExperiment runs a full experiment driver end to end.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// E1 (Figure 1): the Section 2 walkthrough.
func BenchmarkFig1Walkthrough(b *testing.B) { benchExperiment(b, "fig1") }

// E2 (Figure 2): one full interactive loop on the travel instance.
func BenchmarkFig2Loop(b *testing.B) {
	rel := workload.Travel()
	goal := workload.TravelQ2()
	b.ReportAllocs()
	b.ResetTimer()
	questions := 0
	for i := 0; i < b.N; i++ {
		res, err := jim.Infer(rel, goal, "lookahead-maxmin", 1)
		if err != nil {
			b.Fatal(err)
		}
		questions = res.UserLabels
	}
	b.ReportMetric(float64(questions), "questions")
}

// E3 (Figure 3): the four interaction modes.
func BenchmarkFig3Modes(b *testing.B) { benchExperiment(b, "fig3") }

// E4 (Figure 4): benefit of a strategy over user-order labeling.
func BenchmarkFig4Benefit(b *testing.B) { benchExperiment(b, "fig4") }

// E5 (Figure 5): inferring a picture join over Set-card pairs.
func BenchmarkFig5SetGame(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	left, err := setgame.Sample(rng, 9)
	if err != nil {
		b.Fatal(err)
	}
	right, err := setgame.Sample(rng, 9)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := setgame.PairInstance(left, right)
	if err != nil {
		b.Fatal(err)
	}
	goal, err := setgame.SameFeatureGoal("color", "shading")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	questions := 0
	for i := 0; i < b.N; i++ {
		res, err := jim.Infer(inst, goal, "lookahead-maxmin", 1)
		if err != nil {
			b.Fatal(err)
		}
		questions = res.UserLabels
	}
	b.ReportMetric(float64(questions), "questions")
}

// E6: strategy comparison — one sub-bench per strategy on a fixed
// complex instance; the "questions" metric is the table's row.
func BenchmarkStrategyComparison(b *testing.B) {
	rel, goal, err := workload.Synthetic(workload.SynthConfig{
		Attrs: 8, Tuples: 300, GoalAtoms: 3, ExtraMerges: 2.5, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range strategy.Names() {
		if name == "optimal" {
			continue // benched separately in E9
		}
		b.Run(name, func(b *testing.B) {
			questions := 0
			for i := 0; i < b.N; i++ {
				res, err := jim.Infer(rel, goal, name, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("did not converge")
				}
				questions = res.UserLabels
			}
			b.ReportMetric(float64(questions), "questions")
		})
	}
}

// E7: scalability — full runs at growing instance sizes, grouped vs
// ungrouped signature handling.
func BenchmarkScalabilityGrouped(b *testing.B) {
	for _, size := range []int{1000, 5000, 20000} {
		rel, goal, err := workload.Synthetic(workload.SynthConfig{
			Attrs: 6, Tuples: size, Seed: 1, ExtraMerges: 1.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := jim.Infer(rel, goal, "lookahead-maxmin", 1)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("did not converge")
				}
			}
		})
	}
}

// BenchmarkScalabilityStateBuild isolates instance indexing (signature
// computation and grouping), the per-tuple part of E7.
func BenchmarkScalabilityStateBuild(b *testing.B) {
	for _, size := range []int{1000, 5000, 20000} {
		rel, _, err := workload.Synthetic(workload.SynthConfig{
			Attrs: 6, Tuples: size, Seed: 1, ExtraMerges: 1.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := jim.NewState(rel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E8: crowdsourcing cost experiment.
func BenchmarkCrowdCost(b *testing.B) { benchExperiment(b, "crowd") }

// E9: the optimal strategy's exponential blow-up — one sub-bench per
// signature count; compare ns/op growth against lookahead.
func BenchmarkOptimalBlowup(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, sigs := range []int{4, 6, 8} {
		rel := instanceWithSigs(b, rng, 5, sigs)
		goal := partition.RandomGoal(rng, 5, 2)
		b.Run("optimal/sigs="+sizeName(sigs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := jim.NewState(rel)
				if err != nil {
					b.Fatal(err)
				}
				eng := core.NewEngine(st, strategy.Optimal(strategy.DefaultOptimalBudget), oracle.Goal(goal))
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("lookahead/sigs="+sizeName(sigs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := jim.Infer(rel, goal, "lookahead-maxmin", 1)
				if err != nil {
					b.Fatal(err)
				}
				_ = res
			}
		})
	}
}

// E10: SQL and GAV rendering over inferred predicates.
func BenchmarkGAVRendering(b *testing.B) { benchExperiment(b, "gav") }

// E11: hesitant users (abstention handling).
func BenchmarkHesitantUsers(b *testing.B) { benchExperiment(b, "hesitant") }

// Lookahead-2 vs lookahead-1 on a medium instance: the selection-cost
// vs question-count trade-off.
func BenchmarkLookaheadDepth(b *testing.B) {
	rel, goal, err := workload.Synthetic(workload.SynthConfig{
		Attrs: 6, Tuples: 200, GoalAtoms: 2, ExtraMerges: 1.5, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"lookahead-maxmin", "lookahead-2"} {
		b.Run(name, func(b *testing.B) {
			questions := 0
			for i := 0; i < b.N; i++ {
				res, err := jim.Infer(rel, goal, name, 1)
				if err != nil {
					b.Fatal(err)
				}
				questions = res.UserLabels
			}
			b.ReportMetric(float64(questions), "questions")
		})
	}
}

// Session persistence: save + load of a mid-run 5k-tuple session.
func BenchmarkSessionRoundTrip(b *testing.B) {
	rel, goal, err := workload.Synthetic(workload.SynthConfig{
		Attrs: 6, Tuples: 5000, Seed: 3, ExtraMerges: 1.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	st, err := jim.NewState(rel)
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(st, strategy.LookaheadMaxMin(), oracle.Goal(goal))
	eng.MaxSteps = 3
	if _, err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := jim.SaveSession(&buf, st, jim.SessionMeta{}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := jim.LoadSession(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// Version-space boundary computation on a partially-labeled travel
// instance (the demo's certainty panel).
func BenchmarkVersionSpace(b *testing.B) {
	st, err := jim.NewState(workload.Travel())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Apply(2, core.Positive); err != nil {
		b.Fatal(err)
	}
	if _, err := st.Apply(0, core.Negative); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.VersionSpace(0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks for the design choices in DESIGN.md §5 ---------

func randomPartitions(n, count int, seed int64) []partition.P {
	r := rand.New(rand.NewSource(seed))
	out := make([]partition.P, count)
	for i := range out {
		out[i] = partition.Uniform(r, n)
	}
	return out
}

func BenchmarkPartitionMeet(b *testing.B) {
	ps := randomPartitions(12, 64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ps[i%len(ps)]
		q := ps[(i+17)%len(ps)]
		_ = p.Meet(q)
	}
}

func BenchmarkPartitionJoin(b *testing.B) {
	ps := randomPartitions(12, 64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ps[i%len(ps)]
		q := ps[(i+17)%len(ps)]
		_ = p.Join(q)
	}
}

func BenchmarkPartitionLessEq(b *testing.B) {
	ps := randomPartitions(12, 64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ps[i%len(ps)]
		q := ps[(i+17)%len(ps)]
		_ = p.LessEq(q)
	}
}

func BenchmarkSigOf(b *testing.B) {
	rel, _, err := workload.Synthetic(workload.SynthConfig{Attrs: 8, Tuples: 64, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = jim.SigOf(rel.Tuple(i % rel.Len()))
	}
}

func BenchmarkSimulatePrune(b *testing.B) {
	rel, _, err := workload.Synthetic(workload.SynthConfig{
		Attrs: 6, Tuples: 5000, Seed: 5, ExtraMerges: 1.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	st, err := jim.NewState(rel)
	if err != nil {
		b.Fatal(err)
	}
	groups := st.Groups()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := groups[i%len(groups)]
		_ = st.SimulatePrune(g.Sig, core.Positive)
	}
}

func BenchmarkApplyAndPropagate(b *testing.B) {
	rel, goal, err := workload.Synthetic(workload.SynthConfig{
		Attrs: 6, Tuples: 5000, Seed: 6, ExtraMerges: 1.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := jim.NewState(rel)
		if err != nil {
			b.Fatal(err)
		}
		inf := st.InformativeIndices()
		idx := inf[i%len(inf)]
		l := core.Positive
		if !goal.LessEq(st.Sig(idx)) {
			l = core.Negative
		}
		b.StartTimer()
		if _, err := st.Apply(idx, l); err != nil {
			b.Fatal(err)
		}
	}
}

// Lookahead pick latency on a 10k-tuple zipf instance: the incremental
// signature-lattice scorer vs the naive from-scratch reference
// (DESIGN.md §6). Each iteration scores a cold strategy against a
// mid-session state, i.e. exactly the work one pick costs after a new
// label arrives. jimbench -core measures the same comparison over full
// sessions and records it in BENCH_core.json.
func BenchmarkPickZipf10k(b *testing.B) {
	rel, goal, err := workload.Instance("zipf", workload.InstanceConfig{Tuples: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	st, err := jim.NewState(rel)
	if err != nil {
		b.Fatal(err)
	}
	// Advance a few questions so the hypothesis is non-trivial.
	warm := strategy.LookaheadMaxMin()
	for q := 0; q < 4 && !st.Done(); q++ {
		i, ok := warm.Pick(st)
		if !ok {
			break
		}
		l := core.Negative
		if core.Selects(goal, rel.Tuple(i)) {
			l = core.Positive
		}
		if _, err := st.Apply(i, l); err != nil {
			b.Fatal(err)
		}
	}
	paths := []struct {
		name string
		mk   func() core.Picker
	}{
		{"incremental", func() core.Picker { return strategy.LookaheadMaxMin() }},
		{"naive", func() core.Picker { return strategy.MustNaive("lookahead-maxmin", 0) }},
	}
	for _, path := range paths {
		b.Run(path.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := path.mk().Pick(st); !ok {
					b.Fatal("no informative tuple left")
				}
			}
		})
	}
}

// Full 10k-tuple zipf sessions end to end on the incremental path —
// the session-throughput side of the -core benchmark.
func BenchmarkSessionZipf10k(b *testing.B) {
	rel, goal, err := workload.Instance("zipf", workload.InstanceConfig{Tuples: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	questions := 0
	for i := 0; i < b.N; i++ {
		st, err := jim.NewState(rel)
		if err != nil {
			b.Fatal(err)
		}
		eng := core.NewEngine(st, strategy.LookaheadMaxMin(), oracle.Goal(goal))
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("did not converge")
		}
		questions = res.UserLabels
	}
	b.ReportMetric(float64(questions), "questions")
}

func instanceWithSigs(b *testing.B, rng *rand.Rand, n, k int) *jim.Relation {
	b.Helper()
	rel := jim.NewRelation(mustSchema(b, workload.AttrNames(n)...))
	seen := map[string]bool{}
	for len(seen) < k {
		sig := partition.Uniform(rng, n)
		if seen[sig.Key()] {
			continue
		}
		seen[sig.Key()] = true
		if err := rel.Append(workload.TupleWithSig(sig)); err != nil {
			b.Fatal(err)
		}
	}
	return rel
}

func mustSchema(b *testing.B, names ...string) *jim.Schema {
	b.Helper()
	s, err := jim.NewSchema(names...)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func sizeName(n int) string {
	switch {
	case n >= 1000 && n%1000 == 0:
		return itoa(n/1000) + "k"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
